//! The deck structure and problem presets.

use crate::parse::{parse_sections, ParseError, Value};

/// Grid configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridCfg {
    /// Radial cells.
    pub nr: usize,
    /// Colatitude cells.
    pub nt: usize,
    /// Longitude cells (global).
    pub np: usize,
    /// Outer radial boundary in solar radii.
    pub rmax: f64,
}

/// Physics configuration (normalized MAS-like units: lengths in `R_s`,
/// B in a reference field strength, density/temperature scaled to typical
/// coronal base values).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhysicsCfg {
    /// Ratio of specific heats (MAS coronal runs often use a reduced γ).
    pub gamma: f64,
    /// Kinematic viscosity coefficient ν.
    pub visc: f64,
    /// Resistivity η.
    pub eta: f64,
    /// Field-aligned thermal conduction coefficient κ₀ (Spitzer-like
    /// `κ₀ T^{5/2}`).
    pub kappa0: f64,
    /// Enable radiative losses `n²Λ(T)`.
    pub radiation: bool,
    /// Enable the exponential coronal heating source.
    pub heating: bool,
    /// Enable solar gravity.
    pub gravity: bool,
    /// Base density at the inner boundary (normalized).
    pub rho0: f64,
    /// Base temperature at the inner boundary (normalized).
    pub t0: f64,
    /// Dipole field strength at the pole (normalized).
    pub b0: f64,
    /// Amplitude of the initial velocity perturbation (flux-rope /
    /// eruption studies; 0 for relaxation runs).
    pub perturb: f64,
}

/// Time-integration configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeCfg {
    /// Number of steps to run.
    pub n_steps: usize,
    /// CFL safety factor.
    pub cfl: f64,
    /// Maximum time step (normalized).
    pub dt_max: f64,
}

/// How the viscous operator is advanced (the explicit-STS-vs-Krylov
/// trade studied in the paper's ref.\[25\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViscSolver {
    /// Backward-Euler via matrix-free preconditioned conjugate gradients
    /// (the production choice; the solver profiled in the paper's Fig. 4).
    Pcg,
    /// RKL2 super-time-stepping (fully explicit, no global reductions
    /// beyond the stage-count setup).
    Sts,
    /// Plain explicit update (subject to the viscous CFL limit).
    Explicit,
}

impl ViscSolver {
    /// Parse from deck text.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "pcg" => Some(ViscSolver::Pcg),
            "sts" => Some(ViscSolver::Sts),
            "explicit" => Some(ViscSolver::Explicit),
            _ => None,
        }
    }

    /// Deck-text name.
    pub fn name(self) -> &'static str {
        match self {
            ViscSolver::Pcg => "pcg",
            ViscSolver::Sts => "sts",
            ViscSolver::Explicit => "explicit",
        }
    }
}

/// Implicit/parabolic solver configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverCfg {
    /// PCG relative-residual tolerance (viscosity solve).
    pub pcg_tol: f64,
    /// PCG iteration cap.
    pub pcg_max_iter: usize,
    /// Maximum RKL2 super-time-stepping stage count (conduction).
    pub sts_max_stages: usize,
    /// Viscous-operator advance: PCG (implicit), STS, or explicit.
    pub visc_solver: ViscSolver,
    /// Field-aligned (anisotropic) thermal conduction `κ∥ b̂b̂·∇T` instead
    /// of the isotropic operator (the production MAS behaviour).
    pub aligned_conduction: bool,
}

/// Output cadence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutputCfg {
    /// History (diagnostics) interval in steps; 0 disables.
    pub hist_interval: usize,
}

/// Crash-safe checkpoint / restart configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointCfg {
    /// Checkpoint interval in steps; 0 disables checkpointing to disk.
    pub interval: usize,
    /// Directory for the per-rank rotation slots (`ckpt_r{rank}_{a|b}.dump`).
    pub dir: String,
    /// Restart source: a directory of rotation slots (or a single dump
    /// file for 1-rank runs). Empty = fresh start.
    pub restart_from: String,
    /// Retry budget for the supervisor: how many rollback + dt-backoff
    /// cycles are attempted before the run is declared unrecoverable.
    pub max_recoveries: usize,
}

/// Rank-failure resilience configuration (see `mhd::supervisor` and
/// `minimpi::World::run_resilient`). Everything defaults to *off*:
/// `max_respawns = 0` keeps runs on the classic try-run path where a
/// rank death is terminal, and `halo_retries = 0` keeps the halo
/// exchange on the unverified fast path.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceCfg {
    /// Heartbeat interval in milliseconds for the failure detector.
    pub heartbeat_ms: u64,
    /// Consecutive missed heartbeats before a rank is declared dead.
    pub miss_budget: u32,
    /// How many dead ranks the world will respawn before a death becomes
    /// terminal. 0 disables the resilient execution path entirely.
    pub max_respawns: usize,
    /// Transport-level retry budget per halo receive: a dropped or
    /// corrupted halo message is re-requested up to this many times
    /// (with exponential backoff) before the failure escalates to the
    /// rollback path. 0 disables the verified transport.
    pub halo_retries: u32,
    /// Receive deadline in milliseconds applied during supervised runs
    /// (0 = supervisor default). Also overridable at runtime via the
    /// `MAS_RECV_DEADLINE_MS` environment variable, which wins over
    /// this key.
    pub recv_deadline_ms: u64,
}

/// Which fault the injection harness arms (see `mhd::supervisor`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// No fault (the compiled-in hooks stay inert).
    None,
    /// Poison one interior cell of the temperature field with NaN right
    /// after the chosen step's advance — a corrupted kernel output.
    Nan,
    /// Corrupt the payload of the next halo message sent by the chosen
    /// rank (first element becomes NaN in flight).
    HaloCorrupt,
    /// Drop the next halo message sent by the chosen rank entirely; the
    /// peer's receive surfaces as a diagnosable timeout.
    HaloDrop,
    /// Fail the chosen rank's next checkpoint write with an I/O error,
    /// leaving a stale `.tmp` file but never the destination.
    CkptFail,
    /// Panic the chosen rank mid-step (a crashed process).
    Panic,
}

impl FaultKind {
    /// Parse from deck text.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(FaultKind::None),
            "nan" => Some(FaultKind::Nan),
            "halo_corrupt" => Some(FaultKind::HaloCorrupt),
            "halo_drop" => Some(FaultKind::HaloDrop),
            "ckpt_fail" => Some(FaultKind::CkptFail),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }

    /// Deck-text name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::Nan => "nan",
            FaultKind::HaloCorrupt => "halo_corrupt",
            FaultKind::HaloDrop => "halo_drop",
            FaultKind::CkptFail => "ckpt_fail",
            FaultKind::Panic => "panic",
        }
    }
}

/// Fault-injection configuration. Compiled in but inert unless `kind`
/// is something other than `none` **and** `step` is non-zero.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultCfg {
    /// What to break.
    pub kind: FaultKind,
    /// 1-based step during whose advance the fault fires; 0 disarms.
    pub step: usize,
    /// Which rank misbehaves.
    pub rank: usize,
    /// For `ckpt_fail`: the `std::io::ErrorKind` name to inject
    /// (e.g. `other`, `write_zero`, `interrupted`).
    pub io_error: String,
    /// How many consecutive messages the fault hits (halo faults only):
    /// `count = 3` drops/corrupts three sends in a row, which exhausts a
    /// `halo_retries = 2` budget and forces the rollback fallback.
    pub count: u32,
}

/// Serving policy carried with the deck when it is submitted to
/// `mas-serve` (ignored by direct CLI runs). Defaults keep the PR-8
/// behaviour: no deadline, a single attempt, no quarantine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeCfg {
    /// Wall-clock deadline in milliseconds, measured from submission.
    /// A job past its deadline is cancelled cooperatively at the next
    /// step boundary (or failed at claim time if it never started).
    /// 0 disables the deadline.
    pub deadline_ms: u64,
    /// How many times the scheduler will run the job before giving up.
    /// Attempts that end in a worker panic count toward the budget; the
    /// final panicking attempt quarantines the job's cache key under
    /// the crash-loop circuit breaker. Must be >= 1.
    pub max_attempts: u32,
}

/// A deck that failed validation: every problem found, as one structured
/// error. This is the canonical "bad deck" error for **every** entry
/// point — `Simulation::builder(..).try_build()`, the `mas` CLI, and a
/// `mas-serve` job submission all surface the same message instead of a
/// worker panic or an ad-hoc join of strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeckError {
    /// The individual validation failures (never empty).
    pub problems: Vec<String>,
}

impl std::fmt::Display for DeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid deck: {}", self.problems.join("; "))
    }
}

impl std::error::Error for DeckError {}

/// A complete input deck.
#[derive(Clone, Debug, PartialEq)]
pub struct Deck {
    /// Problem name (reports, output file prefixes).
    pub problem: String,
    /// Paper-scale extrapolation target: the global cell count the cost
    /// model should charge for (0 disables scaling). The numerics always
    /// run on the actual `grid` dims; only the virtual-platform timing
    /// extrapolates — see DESIGN.md §2.
    pub paper_cells: usize,
    /// Host execution-engine width for the stdpar kernels (wall-clock
    /// only — model results are thread-count independent). 0 = auto:
    /// `MAS_HOST_THREADS` env if set, else the machine's available
    /// parallelism.
    pub host_threads: usize,
    /// Run the dynamic race auditor: every tiled kernel's first launch
    /// per iteration-space shape executes under instrumented views and is
    /// checked against the `do concurrent` iteration-independence
    /// contract (see `stdpar::race`). Results are bit-identical either
    /// way; default off. The `MAS_PAR_AUDIT=1` environment variable also
    /// enables it when this key is false.
    pub par_audit: bool,
    /// Host-engine tile width: k-planes grouped per dispatch chunk.
    /// 0 = auto-tune from (iteration-space shape, thread count) per kernel
    /// site. Any value produces bit-identical physics — only the dispatch
    /// granularity (and thus wall clock) changes. The `MAS_TILE_K`
    /// environment variable overrides this key.
    pub tile_k: usize,
    /// Grid section.
    pub grid: GridCfg,
    /// Physics section.
    pub physics: PhysicsCfg,
    /// Time-integration section.
    pub time: TimeCfg,
    /// Solver section.
    pub solver: SolverCfg,
    /// Output section.
    pub output: OutputCfg,
    /// Checkpoint / restart section.
    pub checkpoint: CheckpointCfg,
    /// Rank-failure resilience section (off by default).
    pub resilience: ResilienceCfg,
    /// Fault-injection section (inert unless armed).
    pub fault: FaultCfg,
    /// Serving policy section (`mas-serve` deadlines / retry budget).
    pub serve: ServeCfg,
}

impl Default for Deck {
    fn default() -> Self {
        Self {
            problem: "coronal_background".into(),
            paper_cells: 0,
            host_threads: 0,
            par_audit: false,
            tile_k: 0,
            grid: GridCfg {
                nr: 48,
                nt: 40,
                np: 64,
                rmax: 20.0,
            },
            physics: PhysicsCfg {
                gamma: 1.05,
                visc: 2.0e-3,
                eta: 4.0e-4,
                kappa0: 2.0e-2,
                radiation: true,
                heating: true,
                gravity: true,
                rho0: 1.0,
                t0: 1.0,
                b0: 1.0,
                perturb: 0.0,
            },
            time: TimeCfg {
                n_steps: 40,
                cfl: 0.4,
                dt_max: 0.5,
            },
            solver: SolverCfg {
                pcg_tol: 1.0e-9,
                pcg_max_iter: 200,
                sts_max_stages: 16,
                visc_solver: ViscSolver::Pcg,
                aligned_conduction: false,
            },
            output: OutputCfg { hist_interval: 10 },
            checkpoint: CheckpointCfg {
                interval: 0,
                dir: "ckpt".into(),
                restart_from: String::new(),
                max_recoveries: 3,
            },
            resilience: ResilienceCfg {
                heartbeat_ms: 25,
                miss_budget: 4,
                max_respawns: 0,
                halo_retries: 0,
                recv_deadline_ms: 0,
            },
            fault: FaultCfg {
                kind: FaultKind::None,
                step: 0,
                rank: 0,
                io_error: "other".into(),
                count: 1,
            },
            serve: ServeCfg {
                deadline_ms: 0,
                max_attempts: 1,
            },
        }
    }
}

impl Deck {
    /// Parse a namelist-style deck; unspecified keys keep their defaults.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let sections = parse_sections(text)?;
        let mut deck = Deck::default();
        for (section, entries) in &sections {
            for (key, value) in entries {
                deck.apply(section, key, value).map_err(|msg| {
                    ParseError::new(format!("&{section} {key}: {msg}"))
                })?;
            }
        }
        Ok(deck)
    }

    fn apply(&mut self, section: &str, key: &str, v: &Value) -> Result<(), String> {
        match (section, key) {
            ("run", "problem") => self.problem = v.as_str()?.to_string(),
            ("run", "paper_cells") => self.paper_cells = v.as_usize()?,
            ("run", "host_threads") => self.host_threads = v.as_usize()?,
            ("run", "par_audit") => self.par_audit = v.as_bool()?,
            ("run", "tile_k") => self.tile_k = v.as_usize()?,
            ("grid", "nr") => self.grid.nr = v.as_usize()?,
            ("grid", "nt") => self.grid.nt = v.as_usize()?,
            ("grid", "np") => self.grid.np = v.as_usize()?,
            ("grid", "rmax") => self.grid.rmax = v.as_f64()?,
            ("physics", "gamma") => self.physics.gamma = v.as_f64()?,
            ("physics", "visc") => self.physics.visc = v.as_f64()?,
            ("physics", "eta") => self.physics.eta = v.as_f64()?,
            ("physics", "kappa0") => self.physics.kappa0 = v.as_f64()?,
            ("physics", "radiation") => self.physics.radiation = v.as_bool()?,
            ("physics", "heating") => self.physics.heating = v.as_bool()?,
            ("physics", "gravity") => self.physics.gravity = v.as_bool()?,
            ("physics", "rho0") => self.physics.rho0 = v.as_f64()?,
            ("physics", "t0") => self.physics.t0 = v.as_f64()?,
            ("physics", "b0") => self.physics.b0 = v.as_f64()?,
            ("physics", "perturb") => self.physics.perturb = v.as_f64()?,
            ("time", "n_steps") => self.time.n_steps = v.as_usize()?,
            ("time", "cfl") => self.time.cfl = v.as_f64()?,
            ("time", "dt_max") => self.time.dt_max = v.as_f64()?,
            ("solver", "pcg_tol") => self.solver.pcg_tol = v.as_f64()?,
            ("solver", "pcg_max_iter") => self.solver.pcg_max_iter = v.as_usize()?,
            ("solver", "sts_max_stages") => self.solver.sts_max_stages = v.as_usize()?,
            ("solver", "visc_solver") => {
                self.solver.visc_solver = ViscSolver::from_str_opt(v.as_str()?)
                    .ok_or("expected pcg | sts | explicit")?
            }
            ("solver", "aligned_conduction") => {
                self.solver.aligned_conduction = v.as_bool()?
            }
            ("output", "hist_interval") => self.output.hist_interval = v.as_usize()?,
            ("checkpoint", "interval") => self.checkpoint.interval = v.as_usize()?,
            ("checkpoint", "dir") => self.checkpoint.dir = v.as_str()?.to_string(),
            ("checkpoint", "restart_from") => {
                self.checkpoint.restart_from = v.as_str()?.to_string()
            }
            ("checkpoint", "max_recoveries") => {
                self.checkpoint.max_recoveries = v.as_usize()?
            }
            ("fault", "kind") => {
                self.fault.kind = FaultKind::from_str_opt(v.as_str()?).ok_or(
                    "expected none | nan | halo_corrupt | halo_drop | ckpt_fail | panic",
                )?
            }
            ("fault", "step") => self.fault.step = v.as_usize()?,
            ("fault", "rank") => self.fault.rank = v.as_usize()?,
            ("fault", "io_error") => self.fault.io_error = v.as_str()?.to_string(),
            ("fault", "count") => self.fault.count = v.as_usize()? as u32,
            ("resilience", "heartbeat_ms") => {
                self.resilience.heartbeat_ms = v.as_usize()? as u64
            }
            ("resilience", "miss_budget") => {
                self.resilience.miss_budget = v.as_usize()? as u32
            }
            ("resilience", "max_respawns") => {
                self.resilience.max_respawns = v.as_usize()?
            }
            ("resilience", "halo_retries") => {
                self.resilience.halo_retries = v.as_usize()? as u32
            }
            ("resilience", "recv_deadline_ms") => {
                self.resilience.recv_deadline_ms = v.as_usize()? as u64
            }
            ("serve", "deadline_ms") => self.serve.deadline_ms = v.as_usize()? as u64,
            ("serve", "max_attempts") => {
                self.serve.max_attempts = v.as_usize()? as u32
            }
            _ => return Err("unknown key".into()),
        }
        Ok(())
    }

    /// Serialize back to deck text (round-trips through [`Deck::parse`]).
    pub fn to_deck_string(&self) -> String {
        format!(
            "{}&serve\n  deadline_ms = {}\n  max_attempts = {}\n/\n",
            self.identity_text(),
            self.serve.deadline_ms,
            self.serve.max_attempts,
        )
    }

    /// Canonical text of everything that determines the run's *result*:
    /// every section except `&serve`. Deadlines and retry budgets are
    /// scheduling policy — two decks differing only there produce
    /// bit-identical physics, so this (not [`Deck::to_deck_string`]) is
    /// what [`Deck::content_hash`] digests.
    fn identity_text(&self) -> String {
        let b = |x: bool| if x { ".true." } else { ".false." };
        format!(
            "&run\n  problem = '{}'\n  paper_cells = {}\n  host_threads = {}\n  par_audit = {}\n  tile_k = {}\n/\n\
             &grid\n  nr = {}\n  nt = {}\n  np = {}\n  rmax = {}\n/\n\
             &physics\n  gamma = {}\n  visc = {}\n  eta = {}\n  kappa0 = {}\n  \
             radiation = {}\n  heating = {}\n  gravity = {}\n  rho0 = {}\n  \
             t0 = {}\n  b0 = {}\n  perturb = {}\n/\n\
             &time\n  n_steps = {}\n  cfl = {}\n  dt_max = {}\n/\n\
             &solver\n  pcg_tol = {}\n  pcg_max_iter = {}\n  sts_max_stages = {}\n  \
             visc_solver = '{}'\n  aligned_conduction = {}\n/\n\
             &output\n  hist_interval = {}\n/\n\
             &checkpoint\n  interval = {}\n  dir = '{}'\n  restart_from = '{}'\n  \
             max_recoveries = {}\n/\n\
             &resilience\n  heartbeat_ms = {}\n  miss_budget = {}\n  max_respawns = {}\n  \
             halo_retries = {}\n  recv_deadline_ms = {}\n/\n\
             &fault\n  kind = '{}'\n  step = {}\n  rank = {}\n  io_error = '{}'\n  count = {}\n/\n",
            self.problem,
            self.paper_cells,
            self.host_threads,
            b(self.par_audit),
            self.tile_k,
            self.grid.nr,
            self.grid.nt,
            self.grid.np,
            self.grid.rmax,
            self.physics.gamma,
            self.physics.visc,
            self.physics.eta,
            self.physics.kappa0,
            b(self.physics.radiation),
            b(self.physics.heating),
            b(self.physics.gravity),
            self.physics.rho0,
            self.physics.t0,
            self.physics.b0,
            self.physics.perturb,
            self.time.n_steps,
            self.time.cfl,
            self.time.dt_max,
            self.solver.pcg_tol,
            self.solver.pcg_max_iter,
            self.solver.sts_max_stages,
            self.solver.visc_solver.name(),
            b(self.solver.aligned_conduction),
            self.output.hist_interval,
            self.checkpoint.interval,
            self.checkpoint.dir,
            self.checkpoint.restart_from,
            self.checkpoint.max_recoveries,
            self.resilience.heartbeat_ms,
            self.resilience.miss_budget,
            self.resilience.max_respawns,
            self.resilience.halo_retries,
            self.resilience.recv_deadline_ms,
            self.fault.kind.name(),
            self.fault.step,
            self.fault.rank,
            self.fault.io_error,
            self.fault.count,
        )
    }

    /// Tiny problem for doc examples and smoke tests (runs in well under a
    /// second).
    #[allow(clippy::field_reassign_with_default)]
    pub fn preset_quickstart() -> Self {
        let mut d = Deck::default();
        d.problem = "quickstart".into();
        d.grid = GridCfg {
            nr: 16,
            nt: 12,
            np: 16,
            rmax: 10.0,
        };
        d.time.n_steps = 5;
        d.output.hist_interval = 1;
        d
    }

    /// The scaled coronal-background relaxation: our stand-in for the
    /// paper's 36M-cell production test case (Reeves et al. 2019 setup).
    /// ~300k cells so the whole 6-version × 4-GPU-count sweep runs on a
    /// laptop; the benchmark harness extrapolates model timings to the
    /// paper scale from the kernel census.
    #[allow(clippy::field_reassign_with_default)]
    pub fn preset_coronal_background() -> Self {
        let mut d = Deck::default();
        d.problem = "coronal_background".into();
        d.grid = GridCfg {
            nr: 64,
            nt: 48,
            np: 96,
            rmax: 30.0,
        };
        d.time.n_steps = 25;
        d
    }

    /// Flux-rope-style eruption: the coronal background plus a strong
    /// velocity shear perturbation at the inner boundary (the kind of
    /// CME-driver study MAS/CORHEL runs in production).
    pub fn preset_flux_rope() -> Self {
        let mut d = Deck::preset_coronal_background();
        d.problem = "flux_rope".into();
        d.grid = GridCfg {
            nr: 48,
            nt: 40,
            np: 72,
            rmax: 20.0,
        };
        d.physics.perturb = 0.08;
        d.time.n_steps = 30;
        d
    }

    /// Number of cells in the global grid.
    pub fn n_cells(&self) -> usize {
        self.grid.nr * self.grid.nt * self.grid.np
    }

    /// Cost-model volume scale (≥ 1): `paper_cells / n_cells`.
    pub fn volume_scale(&self) -> f64 {
        if self.paper_cells == 0 {
            1.0
        } else {
            (self.paper_cells as f64 / self.n_cells() as f64).max(1.0)
        }
    }

    /// Cost-model surface scale: `volume_scale^(2/3)` (halo planes).
    pub fn area_scale(&self) -> f64 {
        self.volume_scale().powf(2.0 / 3.0)
    }

    /// Cost-model linear scale: `volume_scale^(1/3)` (1-D metric arrays).
    pub fn linear_scale(&self) -> f64 {
        self.volume_scale().powf(1.0 / 3.0)
    }

    /// Sanity-check the deck; returns a list of problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = vec![];
        if self.grid.nr < 4 || self.grid.nt < 4 || self.grid.np < 4 {
            errs.push("grid must be at least 4 cells in every direction".into());
        }
        if self.grid.rmax <= 1.0 {
            errs.push("rmax must exceed the solar surface (r = 1)".into());
        }
        if !(1.0..=2.0).contains(&self.physics.gamma) {
            errs.push(format!("gamma {} outside [1, 2]", self.physics.gamma));
        }
        if self.time.cfl <= 0.0 || self.time.cfl > 1.0 {
            errs.push(format!("cfl {} outside (0, 1]", self.time.cfl));
        }
        if self.physics.visc < 0.0 || self.physics.eta < 0.0 || self.physics.kappa0 < 0.0 {
            errs.push("dissipation coefficients must be non-negative".into());
        }
        if self.solver.pcg_tol <= 0.0 || self.solver.pcg_tol >= 1.0 {
            errs.push(format!("pcg_tol {} outside (0, 1)", self.solver.pcg_tol));
        }
        if self.solver.sts_max_stages < 1 {
            errs.push("sts_max_stages must be >= 1".into());
        }
        if self.checkpoint.interval > 0 && self.checkpoint.dir.is_empty() {
            errs.push("checkpoint dir must be non-empty when interval > 0".into());
        }
        if self.fault.kind != FaultKind::None
            && self.fault.step > 0
            && self.fault.step > self.time.n_steps
        {
            errs.push(format!(
                "fault step {} beyond n_steps {}",
                self.fault.step, self.time.n_steps
            ));
        }
        if self.fault.count == 0 {
            errs.push("fault count must be >= 1 (set kind = 'none' to disarm)".into());
        }
        if self.serve.max_attempts == 0 {
            errs.push("serve max_attempts must be >= 1".into());
        }
        if self.resilience.max_respawns > 0 {
            if self.resilience.heartbeat_ms == 0 {
                errs.push("resilience heartbeat_ms must be > 0 when max_respawns > 0".into());
            }
            if self.resilience.miss_budget == 0 {
                errs.push("resilience miss_budget must be >= 1 when max_respawns > 0".into());
            }
        }
        errs
    }

    /// [`Deck::validate`] as a `Result`: `Err` carries every problem as a
    /// structured [`DeckError`]. Use this at API boundaries (CLI, job
    /// submission, builder) so all of them reject a bad deck identically.
    pub fn validated(&self) -> Result<(), DeckError> {
        let problems = self.validate();
        if problems.is_empty() {
            Ok(())
        } else {
            Err(DeckError { problems })
        }
    }

    /// Content hash of the deck: FNV-1a 64 over the canonical text of
    /// every result-determining section, so two decks hash equal exactly
    /// when every effective key matches — regardless of comment/ordering
    /// differences in the original files. The `&serve` section (deadline
    /// / retry policy) is deliberately excluded: it cannot change the
    /// physics, so it must not fragment the `mas-serve` result cache.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        for b in self.identity_text().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// True when the fault section will actually fire (kind armed and a
    /// target step chosen).
    pub fn fault_armed(&self) -> bool {
        self.fault.kind != FaultKind::None && self.fault.step > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(Deck::default().validate().is_empty());
        assert!(Deck::preset_quickstart().validate().is_empty());
        assert!(Deck::preset_coronal_background().validate().is_empty());
        assert!(Deck::preset_flux_rope().validate().is_empty());
    }

    #[test]
    fn parse_overrides_defaults() {
        let text = "&grid\n nr = 8\n nt = 8\n np = 8\n/\n&time\n n_steps = 3\n/\n";
        let d = Deck::parse(text).unwrap();
        assert_eq!(d.grid.nr, 8);
        assert_eq!(d.time.n_steps, 3);
        // untouched key keeps default
        assert_eq!(d.physics.gamma, 1.05);
    }

    #[test]
    fn roundtrip_through_text() {
        let d0 = Deck::preset_flux_rope();
        let text = d0.to_deck_string();
        let d1 = Deck::parse(&text).unwrap();
        assert_eq!(d0, d1);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let e = Deck::parse("&grid\n bogus = 3\n/\n").unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut d = Deck::default();
        d.physics.gamma = 3.0;
        d.time.cfl = 0.0;
        let errs = d.validate();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn checkpoint_and_fault_sections_parse() {
        let text = "&checkpoint\n interval = 5\n dir = 'out/ck'\n \
                    restart_from = 'out/ck'\n max_recoveries = 2\n/\n\
                    &fault\n kind = 'nan'\n step = 3\n rank = 1\n io_error = 'write_zero'\n/\n";
        let d = Deck::parse(text).unwrap();
        assert_eq!(d.checkpoint.interval, 5);
        assert_eq!(d.checkpoint.dir, "out/ck");
        assert_eq!(d.checkpoint.restart_from, "out/ck");
        assert_eq!(d.checkpoint.max_recoveries, 2);
        assert_eq!(d.fault.kind, FaultKind::Nan);
        assert_eq!(d.fault.step, 3);
        assert_eq!(d.fault.rank, 1);
        assert_eq!(d.fault.io_error, "write_zero");
        assert!(d.fault_armed());
        assert!(!Deck::default().fault_armed());
    }

    #[test]
    fn fault_kind_roundtrips_and_rejects_unknown() {
        for k in [
            FaultKind::None,
            FaultKind::Nan,
            FaultKind::HaloCorrupt,
            FaultKind::HaloDrop,
            FaultKind::CkptFail,
            FaultKind::Panic,
        ] {
            assert_eq!(FaultKind::from_str_opt(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_str_opt("meteor"), None);
        let e = Deck::parse("&fault\n kind = 'meteor'\n/\n").unwrap_err();
        assert!(e.to_string().contains("halo_corrupt"));
    }

    #[test]
    fn validate_checks_fault_and_checkpoint() {
        let mut d = Deck::default();
        d.checkpoint.interval = 5;
        d.checkpoint.dir.clear();
        d.fault.kind = FaultKind::Nan;
        d.fault.step = d.time.n_steps + 1;
        let errs = d.validate();
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn resilience_section_parses_and_defaults_off() {
        let d = Deck::default();
        assert_eq!(d.resilience.max_respawns, 0, "resilience must default off");
        assert_eq!(d.resilience.halo_retries, 0);
        assert_eq!(d.resilience.recv_deadline_ms, 0);
        assert_eq!(d.fault.count, 1);
        let text = "&resilience\n heartbeat_ms = 10\n miss_budget = 6\n \
                    max_respawns = 2\n halo_retries = 3\n recv_deadline_ms = 1500\n/\n\
                    &fault\n kind = 'halo_drop'\n step = 2\n count = 4\n/\n";
        let d = Deck::parse(text).unwrap();
        assert_eq!(d.resilience.heartbeat_ms, 10);
        assert_eq!(d.resilience.miss_budget, 6);
        assert_eq!(d.resilience.max_respawns, 2);
        assert_eq!(d.resilience.halo_retries, 3);
        assert_eq!(d.resilience.recv_deadline_ms, 1500);
        assert_eq!(d.fault.count, 4);
        assert!(d.validate().is_empty(), "{:?}", d.validate());
    }

    #[test]
    fn validate_checks_resilience_and_fault_count() {
        let mut d = Deck::default();
        d.resilience.max_respawns = 1;
        d.resilience.heartbeat_ms = 0;
        d.resilience.miss_budget = 0;
        d.fault.count = 0;
        let errs = d.validate();
        assert_eq!(errs.len(), 3, "{errs:?}");
    }

    #[test]
    fn validated_returns_structured_error() {
        assert!(Deck::default().validated().is_ok());
        let mut d = Deck::default();
        d.physics.gamma = 3.0;
        d.time.cfl = 0.0;
        let err = d.validated().unwrap_err();
        assert_eq!(err.problems.len(), 2);
        let msg = err.to_string();
        assert!(msg.starts_with("invalid deck: "), "{msg}");
        assert!(msg.contains("gamma") && msg.contains("cfl"), "{msg}");
    }

    #[test]
    fn content_hash_tracks_effective_keys_only() {
        let a = Deck::preset_quickstart();
        let mut b = Deck::preset_quickstart();
        assert_eq!(a.content_hash(), b.content_hash());
        // Textual noise (comments, spacing, key order) does not change
        // the hash: parse normalizes to the same effective deck.
        let noisy = format!("! a comment\n\n{}", a.to_deck_string());
        assert_eq!(Deck::parse(&noisy).unwrap().content_hash(), a.content_hash());
        // Any effective change does.
        b.time.n_steps += 1;
        assert_ne!(a.content_hash(), b.content_hash());
        // Serving policy is not part of the result identity: decks
        // differing only in &serve hash equal (same cache entry).
        let mut c = Deck::preset_quickstart();
        c.serve.deadline_ms = 5000;
        c.serve.max_attempts = 3;
        assert_eq!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn serve_section_parses_and_defaults_off() {
        let d = Deck::default();
        assert_eq!(d.serve.deadline_ms, 0, "deadline must default off");
        assert_eq!(d.serve.max_attempts, 1, "single attempt by default");
        let text = "&serve\n deadline_ms = 2500\n max_attempts = 3\n/\n";
        let d = Deck::parse(text).unwrap();
        assert_eq!(d.serve.deadline_ms, 2500);
        assert_eq!(d.serve.max_attempts, 3);
        assert!(d.validate().is_empty(), "{:?}", d.validate());
        // Round-trips through the canonical text form.
        assert_eq!(Deck::parse(&d.to_deck_string()).unwrap(), d);
    }

    #[test]
    fn validate_rejects_zero_max_attempts() {
        let mut d = Deck::default();
        d.serve.max_attempts = 0;
        let errs = d.validate();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("max_attempts"));
    }

    #[test]
    fn flux_rope_has_perturbation() {
        assert!(Deck::preset_flux_rope().physics.perturb > 0.0);
        assert_eq!(Deck::preset_coronal_background().physics.perturb, 0.0);
    }
}
