//! Failure-domain isolation integration tests: crash-loop quarantine,
//! device health (suspect → canary → reinstate), priority load shedding,
//! and job deadlines — each failure contained to its own domain while
//! the rest of the server keeps serving.
//!
//! The process-level soak of the same machinery (SIGKILL restarts,
//! connection chaos, bit-exactness vs an undisturbed baseline) lives in
//! `mas_serve --chaos-drill`, run by CI; these tests pin the semantics
//! deterministically in-process.

use gpusim::DeviceSpec;
use mas_config::Deck;
use mas_serve::{Client, JobSpec, JobState, Server, ServerConfig, SubmitError};
use std::sync::Arc;
use std::time::Duration;

fn tiny_deck(n_steps: usize) -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = n_steps;
    d.output.hist_interval = 0;
    d
}

/// A deck that trips the documented worker-panic failpoint.
fn panic_deck() -> Deck {
    let mut d = tiny_deck(4);
    d.problem = "chaos-panic".into();
    d
}

fn boot_with(f: impl FnOnce(&mut ServerConfig)) -> (Arc<Server>, Client) {
    let mut cfg = ServerConfig::new(DeviceSpec::a100_40gb(), 2);
    cfg.n_workers = 2;
    f(&mut cfg);
    let server = Server::start(cfg);
    let client = Client::connect(server.clone());
    (server, client)
}

#[test]
fn panicking_deck_is_quarantined_after_max_attempts_and_others_keep_running() {
    let (server, client) = boot_with(|_| {});

    let id = client
        .submit(JobSpec::new(panic_deck()).seed(7).max_attempts(2))
        .expect("submit accepted");
    let status = client.wait(id).expect("job exists");
    assert_eq!(status.state, JobState::Quarantined);
    assert!(
        status.error.as_deref().unwrap_or("").contains("worker panicked"),
        "quarantine names the panic: {:?}",
        status.error
    );
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 2, "both attempts panicked and were contained");
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.quarantine_keys, 1);

    // The same run is refused at submit time now — no third crash.
    match client.submit(JobSpec::new(panic_deck()).seed(7)) {
        Err(SubmitError::Quarantined { message }) => {
            assert!(message.contains("worker panicked"), "refusal carries the cause")
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    // A different seed is a different run — not collateral damage.
    let ok = client
        .submit(JobSpec::new(panic_deck()).seed(8).max_attempts(1))
        .expect("different key accepted");
    assert_eq!(client.wait(ok).unwrap().state, JobState::Quarantined);

    // The worker pool survived both crash loops: normal work still runs.
    let normal = client
        .submit(JobSpec::new(tiny_deck(4)).seed(9))
        .expect("normal submit");
    assert_eq!(client.wait(normal).unwrap().state, JobState::Done);

    // Operator clears the quarantine; the key submits again.
    assert_eq!(client.quarantine_list().len(), 2);
    assert_eq!(client.quarantine_clear(None), 2);
    assert!(client.quarantine_list().is_empty());
    client
        .submit(JobSpec::new(panic_deck()).seed(7).max_attempts(1))
        .expect("cleared key accepted again");

    server.shutdown();
    server.join();
}

#[test]
fn sick_device_goes_suspect_and_the_canary_reinstates_it() {
    let (server, client) = boot_with(|cfg| {
        cfg.n_workers = 1;
        cfg.canary_every = Duration::from_millis(10);
    });

    // Three scripted faults on device 0: each failed lease is blamed on
    // it, the third consecutive failure pulls it from rotation.
    server.pool().inject_fault(0, 3).expect("inject");
    let id = client
        .submit(JobSpec::new(tiny_deck(4)).seed(7).max_attempts(6))
        .expect("submit");
    let status = client.wait(id).expect("job exists");
    assert_eq!(
        status.state,
        JobState::Done,
        "retries rode over the sick device: {:?}",
        status.error
    );

    // The canary probes the suspect once its faults are exhausted and
    // puts it back in rotation.
    let mut healthy = false;
    for _ in 0..500 {
        let p = server.stats().pool;
        if p.suspect == 0 && p.reinstated >= 1 {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let p = server.stats().pool;
    assert!(healthy, "device reinstated by the canary: {p:?}");
    assert!(p.device_failures >= 3, "failures were counted: {p:?}");
    assert!(server.pool().suspects().is_empty());

    server.shutdown();
    server.join();
}

#[test]
fn overload_sheds_lowest_priority_and_high_priority_still_completes() {
    let (server, client) = boot_with(|cfg| {
        cfg.n_devices = 1;
        cfg.n_workers = 1;
        cfg.max_queue = 8;
        cfg.shed_queue_depth = 2;
        cfg.retry_after_ms = 750;
    });

    // Fill the single worker, then the queue up to the watermark. The
    // blocker must be *claimed* before anything else queues, or the
    // watermark counts it and sheds the wrong job.
    let blocker = client
        .submit(JobSpec::new(tiny_deck(1000)).seed(1).priority(9))
        .expect("blocker");
    for _ in 0..2000 {
        if client.status(blocker).expect("blocker exists").state != JobState::Queued {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_ne!(client.status(blocker).unwrap().state, JobState::Queued);
    let victim = client
        .submit(JobSpec::new(tiny_deck(4)).seed(2).priority(1))
        .expect("victim queued");
    let keeper = client
        .submit(JobSpec::new(tiny_deck(4)).seed(3).priority(3))
        .expect("keeper queued");

    // A higher-priority newcomer displaces the lowest-priority queued
    // job instead of being turned away.
    let high = client
        .submit(JobSpec::new(tiny_deck(4)).seed(4).priority(5))
        .expect("high-priority newcomer accepted under overload");
    let shed = client.status(victim).expect("victim exists");
    assert_eq!(shed.state, JobState::Cancelled);
    let msg = shed.error.as_deref().unwrap_or("");
    assert!(
        msg.contains("shed under overload") && msg.contains("retry after"),
        "victim told why and when: {msg:?}"
    );

    // A lower-priority newcomer is turned away with the retry hint.
    match client.submit(JobSpec::new(tiny_deck(4)).seed(5).priority(0)) {
        Err(SubmitError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 750),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    for id in [blocker, keeper, high] {
        assert_eq!(
            client.wait(id).unwrap().state,
            JobState::Done,
            "{id} completes despite the overload"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.shed_total, 1);
    assert_eq!(stats.cancelled, 1);

    server.shutdown();
    server.join();
}

#[test]
fn deadline_fails_a_running_job_cooperatively() {
    let (server, client) = boot_with(|_| {});

    let id = client
        .submit(JobSpec::new(tiny_deck(200_000)).seed(7).deadline_ms(150))
        .expect("submit");
    let status = client.wait(id).expect("job exists");
    assert_eq!(status.state, JobState::Failed);
    assert!(
        status.error.as_deref().unwrap_or("").contains("deadline exceeded"),
        "failure names the deadline: {:?}",
        status.error
    );
    assert!(
        status.steps_done < 200_000,
        "the run was cut short, not completed"
    );
    assert_eq!(server.stats().deadline_exceeded, 1);

    // Deadlines come from the deck's &serve section too.
    let mut deck = tiny_deck(200_000);
    deck.serve.deadline_ms = 150;
    let id = client.submit(JobSpec::new(deck).seed(8)).expect("submit");
    let status = client.wait(id).expect("job exists");
    assert_eq!(status.state, JobState::Failed);

    // The devices the deadlined jobs held are all back.
    let p = server.stats().pool;
    assert_eq!(p.busy, 0, "no leaked leases after deadline failures: {p:?}");

    server.shutdown();
    server.join();
}

#[test]
fn expired_deadline_fails_a_queued_job_without_running_it() {
    let (server, client) = boot_with(|cfg| {
        cfg.n_devices = 1;
        cfg.n_workers = 1;
    });

    // The blocker holds the only worker well past the queued job's
    // deadline; the queued job must die in the queue, zero steps run.
    let blocker = client
        .submit(JobSpec::new(tiny_deck(600)).seed(1))
        .expect("blocker");
    let doomed = client
        .submit(JobSpec::new(tiny_deck(4)).seed(2).deadline_ms(40))
        .expect("queued");
    let status = client.wait(doomed).expect("job exists");
    assert_eq!(status.state, JobState::Failed);
    assert_eq!(status.steps_done, 0, "never claimed a device");
    assert_eq!(client.wait(blocker).unwrap().state, JobState::Done);

    server.shutdown();
    server.join();
}
