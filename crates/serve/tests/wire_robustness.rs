//! Wire-protocol robustness: the request parser and framed line reader
//! must survive arbitrary corruption of otherwise-valid traffic —
//! every single-byte flip and every truncation of every request kind —
//! returning a structured verdict (parsed, rejected, or framed error)
//! and never panicking. A panic here is a remote denial of service: one
//! hostile client killing the connection thread of a shared server.

use mas_config::Deck;
use mas_serve::wire::{self, WireRead};
use mas_serve::JobSpec;
use std::io::Cursor;

/// One valid line of every request kind the protocol knows, including a
/// submit whose deck text exercises the escaping path.
fn corpus() -> Vec<String> {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 4;
    deck.serve.deadline_ms = 1500;
    deck.serve.max_attempts = 3;
    let submit = wire::encode_submit(
        &JobSpec::new(deck)
            .tenant("fuzz tenant with spaces")
            .ranks(2)
            .seed(999)
            .priority(-3)
            .deadline_ms(250)
            .max_attempts(2),
    );
    vec![
        submit,
        "status id=1".into(),
        "wait id=18446744073709551615".into(),
        "result id=2".into(),
        "cancel id=3".into(),
        "stats".into(),
        "drain".into(),
        "shutdown".into(),
        "quarantine list".into(),
        "quarantine clear".into(),
        "quarantine clear hash=1234567890123456789".into(),
        "inject device=0 count=3".into(),
    ]
}

/// Feed raw bytes through the framed reader exactly as a connection
/// thread would, then through the parser when a line comes out. Nothing
/// here may panic; the return value only distinguishes outcomes so the
/// happy path can be asserted on the unmutated corpus.
fn drive(bytes: &[u8]) -> &'static str {
    let mut reader = Cursor::new(bytes.to_vec());
    match wire::read_request_line(&mut reader) {
        Ok(WireRead::Line(line)) => match wire::parse_request(&line) {
            Ok(_) => "parsed",
            Err(_) => "rejected",
        },
        Ok(WireRead::Eof) => "eof",
        Ok(WireRead::TooLong) => "too-long",
        Ok(WireRead::BadUtf8) => "bad-utf8",
        Err(_) => "io-error",
    }
}

#[test]
fn unmutated_corpus_parses() {
    for line in corpus() {
        let mut framed = line.clone().into_bytes();
        framed.push(b'\n');
        assert_eq!(drive(&framed), "parsed", "corpus line must parse: {line}");
        assert!(
            wire::parse_request(&line).is_ok(),
            "direct parse must succeed: {line}"
        );
    }
}

#[test]
fn every_single_byte_flip_is_survived() {
    // Masks chosen to hit the interesting corruption classes: a low bit
    // (digit/letter drift), case flip, the high bit (non-ASCII), and
    // full inversion (control bytes, embedded NUL-ish garbage).
    const MASKS: [u8; 4] = [0x01, 0x20, 0x80, 0xFF];
    for line in corpus() {
        let mut framed = line.into_bytes();
        framed.push(b'\n');
        for i in 0..framed.len() {
            for mask in MASKS {
                let mut mutated = framed.clone();
                mutated[i] ^= mask;
                // Any verdict is acceptable; returning is the contract.
                let _ = drive(&mutated);
                // The parser alone must also hold when the corruption
                // survives UTF-8 (the reader may have rejected it).
                if let Ok(text) = std::str::from_utf8(&mutated) {
                    let _ = wire::parse_request(text.trim_end_matches('\n'));
                }
            }
        }
    }
}

#[test]
fn every_truncation_is_survived() {
    for line in corpus() {
        let mut framed = line.into_bytes();
        framed.push(b'\n');
        for len in 0..framed.len() {
            // Truncated mid-line and never terminated: the reader sees
            // EOF with a partial line buffered.
            let _ = drive(&framed[..len]);
            // Truncated but newline-terminated: a short line reaching
            // the parser.
            let mut terminated = framed[..len].to_vec();
            terminated.push(b'\n');
            let _ = drive(&terminated);
        }
    }
}

#[test]
fn hostile_framing_is_survived() {
    // Not derived from valid lines at all: raw garbage frames.
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        vec![b'\n'],
        vec![0u8; 64],
        vec![0xFF; 64],
        b"submit".to_vec(),
        b"submit \xff\xfe tenant=x\n".to_vec(),
        b"quarantine clear hash=not-a-number\n".to_vec(),
        b"inject device=99999999999999999999 count=1\n".to_vec(),
        {
            // One byte past the frame cap, no newline in sight.
            vec![b'a'; wire::MAX_LINE + 1]
        },
    ];
    for case in cases {
        let _ = drive(&case);
    }
}
