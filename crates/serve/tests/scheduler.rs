//! End-to-end integration tests driven through the in-process client:
//! concurrent scheduling with bit-exact physics, content-addressed
//! cache hits, quota/backpressure rejections, structured bad-deck
//! failures, cooperative cancellation, priority ordering, and rank-death
//! recovery underneath the scheduler.

use gpusim::DeviceSpec;
use mas_config::{Deck, FaultKind};
use mas_serve::{Client, JobSpec, JobState, Server, ServerConfig, SubmitError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use stdpar::CodeVersion;

fn tiny_deck(n_steps: usize) -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = n_steps;
    d.output.hist_interval = 0;
    d
}

fn boot(n_devices: usize, n_workers: usize, max_queue: usize, quota: usize) -> (Arc<Server>, Client) {
    let mut cfg = ServerConfig::new(DeviceSpec::a100_40gb(), n_devices);
    cfg.n_workers = n_workers;
    cfg.max_queue = max_queue;
    cfg.tenant_quota = quota;
    let server = Server::start(cfg);
    let client = Client::connect(server.clone());
    (server, client)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mas_serve_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Poll until the job leaves `Queued` (bounded; panics on timeout).
fn await_running(client: &Client, id: mas_serve::JobId) {
    for _ in 0..2000 {
        let s = client.status(id).expect("job exists");
        if s.state != JobState::Queued {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("{id} never started");
}

#[test]
fn concurrent_jobs_finish_bit_exact_to_standalone_runs() {
    // Two different decks in flight at once on a 2-device pool must each
    // produce exactly the state the standalone `mas` path produces.
    let deck_a = tiny_deck(4);
    let deck_b = tiny_deck(6);
    let base_a = mas_mhd::run_supervised(&deck_a, CodeVersion::A, DeviceSpec::a100_40gb(), 1, 7, false)
        .expect("standalone a");
    let base_b =
        mas_mhd::run_supervised(&deck_b, CodeVersion::Ad, DeviceSpec::a100_40gb(), 1, 9, false)
            .expect("standalone b");

    let (server, client) = boot(2, 2, 8, 8);
    let ja = client
        .submit(JobSpec::new(deck_a).version(CodeVersion::A).seed(7).tenant("a"))
        .unwrap();
    let jb = client
        .submit(JobSpec::new(deck_b).version(CodeVersion::Ad).seed(9).tenant("b"))
        .unwrap();

    let sa = client.wait(ja).unwrap();
    let sb = client.wait(jb).unwrap();
    assert_eq!(sa.state, JobState::Done, "{:?}", sa.error);
    assert_eq!(sb.state, JobState::Done, "{:?}", sb.error);
    assert_eq!(sa.steps_done, 4);
    assert_eq!(sb.steps_done, 6);

    let ra = client.result(ja).unwrap().unwrap();
    let rb = client.result(jb).unwrap().unwrap();
    assert_eq!(ra.ranks[0].state_hash, base_a.ranks[0].state_hash, "deck a");
    assert_eq!(rb.ranks[0].state_hash, base_b.ranks[0].state_hash, "deck b");

    let stats = client.stats();
    assert_eq!(stats.done, 2);
    assert_eq!(stats.pool.leases_granted, 2);
    assert_eq!(stats.pool.leases_released, 2);
    server.shutdown();
    server.join();
}

#[test]
fn multi_rank_job_is_bit_exact_and_leases_one_device_per_rank() {
    let deck = tiny_deck(4);
    let base = mas_mhd::run_supervised(&deck, CodeVersion::A, DeviceSpec::a100_40gb(), 2, 11, false)
        .expect("standalone 2-rank");

    let (server, client) = boot(2, 1, 8, 8);
    let status = client
        .run(JobSpec::new(deck).ranks(2).seed(11))
        .expect("submit");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let rep = client.result(status.id).unwrap().unwrap();
    assert_eq!(rep.ranks.len(), 2);
    for (a, b) in base.ranks.iter().zip(&rep.ranks) {
        assert_eq!(a.state_hash, b.state_hash, "rank {}", a.rank);
    }
    // Both devices were held at once by the one job.
    assert_eq!(client.stats().pool.peak_busy, 2);
    server.shutdown();
    server.join();
}

#[test]
fn resubmission_is_a_cache_hit_running_zero_steps() {
    let (server, client) = boot(1, 1, 8, 8);
    let spec = JobSpec::new(tiny_deck(4)).seed(7).tenant("a");

    let first = client.run(spec.clone()).unwrap();
    assert_eq!(first.state, JobState::Done, "{:?}", first.error);
    assert!(!first.cached);
    let steps_after_first = server.total_steps();
    assert_eq!(steps_after_first, 4, "4 steps on 1 rank");

    // Identical resubmission — even from another tenant at another
    // priority: the run identity is (deck content, version, ranks, seed).
    let second = client
        .run(spec.clone().tenant("b").priority(9))
        .unwrap();
    assert_eq!(second.state, JobState::Done);
    assert!(second.cached, "resubmission must be served from the cache");
    assert_eq!(server.total_steps(), steps_after_first, "zero new steps");

    let r1 = client.result(first.id).unwrap().unwrap();
    let r2 = client.result(second.id).unwrap().unwrap();
    assert!(Arc::ptr_eq(&r1, &r2), "cache returns the same report");

    // A genuinely different run (new seed) is a miss and executes.
    let third = client.run(spec.seed(8)).unwrap();
    assert_eq!(third.state, JobState::Done);
    assert!(!third.cached);
    assert_eq!(server.total_steps(), steps_after_first + 4);

    let stats = client.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    server.shutdown();
    server.join();
}

#[test]
fn quota_and_backpressure_reject_structured() {
    let (server, client) = boot(1, 1, 2, 2);
    let long = tiny_deck(100_000); // cancelled below; never runs out

    // Tenant a: one running + one queued = at quota.
    let j1 = client.submit(JobSpec::new(long.clone()).tenant("a").seed(1)).unwrap();
    await_running(&client, j1);
    let j2 = client.submit(JobSpec::new(long.clone()).tenant("a").seed(2)).unwrap();
    assert_eq!(
        client.submit(JobSpec::new(long.clone()).tenant("a").seed(3)),
        Err(SubmitError::QuotaExceeded { tenant: "a".into(), quota: 2 })
    );

    // Tenant b is under quota but fills the queue — then hits backpressure.
    let j3 = client.submit(JobSpec::new(long.clone()).tenant("b").seed(4)).unwrap();
    assert_eq!(
        client.submit(JobSpec::new(long.clone()).tenant("b").seed(5)),
        Err(SubmitError::QueueFull { capacity: 2 })
    );

    // Cancelling a queued job frees its quota and queue slot.
    client.cancel(j2).unwrap();
    assert_eq!(client.status(j2).unwrap().state, JobState::Cancelled);
    let j4 = client.submit(JobSpec::new(long.clone()).tenant("b").seed(5)).unwrap();

    // Cancel the running job cooperatively: it must end Cancelled (not
    // Failed), with the cancellation visible in the error message.
    client.cancel(j1).unwrap();
    let s1 = client.wait(j1).unwrap();
    assert_eq!(s1.state, JobState::Cancelled);
    assert!(
        s1.error.as_deref().unwrap_or("").contains("cancelled"),
        "{:?}",
        s1.error
    );

    for id in [j3, j4] {
        let _ = client.cancel(id);
    }
    server.shutdown();
    server.join();
}

#[test]
fn invalid_deck_and_infeasible_jobs_are_rejected_at_submit() {
    let (server, client) = boot(2, 1, 8, 8);

    let mut bad = tiny_deck(4);
    bad.physics.gamma = 5.0;
    match client.submit(JobSpec::new(bad)) {
        Err(SubmitError::InvalidDeck(e)) => {
            assert!(e.problems.iter().any(|p| p.contains("gamma")), "{e}");
            assert!(e.to_string().starts_with("invalid deck:"), "{e}");
        }
        other => panic!("expected InvalidDeck, got {other:?}"),
    }

    assert_eq!(
        client.submit(JobSpec::new(tiny_deck(4)).ranks(3)),
        Err(SubmitError::Infeasible {
            needed: 3,
            pool: 2,
            healthy: 2
        })
    );
    assert_eq!(
        client.submit(JobSpec::new(tiny_deck(4)).ranks(0)),
        Err(SubmitError::Infeasible {
            needed: 0,
            pool: 2,
            healthy: 2
        })
    );

    // Nothing was admitted.
    let stats = client.stats();
    assert_eq!((stats.queued, stats.running, stats.done), (0, 0, 0));
    server.shutdown();
    server.join();
}

#[test]
fn higher_priority_queued_job_runs_first() {
    let (server, client) = boot(1, 1, 8, 8);
    let long = tiny_deck(100_000);

    let blocker = client.submit(JobSpec::new(long.clone()).seed(1)).unwrap();
    await_running(&client, blocker);
    let low = client.submit(JobSpec::new(long.clone()).seed(2).priority(0)).unwrap();
    let high = client.submit(JobSpec::new(long.clone()).seed(3).priority(5)).unwrap();

    client.cancel(blocker).unwrap();
    assert_eq!(client.wait(blocker).unwrap().state, JobState::Cancelled);

    // The worker must pick the high-priority job even though the
    // low-priority one was submitted earlier.
    await_running(&client, high);
    assert_eq!(client.status(high).unwrap().state, JobState::Running);
    assert_eq!(client.status(low).unwrap().state, JobState::Queued);

    for id in [high, low] {
        let _ = client.cancel(id);
        let _ = client.wait(id);
    }
    server.shutdown();
    server.join();
}

#[test]
fn rank_death_mid_job_recovers_under_the_scheduler() {
    // The supervisor's respawn recovery must work unchanged when the job
    // runs inside the worker pool: a rank is killed mid-run, the
    // replacement restores from the committed checkpoint, and the final
    // state is bit-exact with an undisturbed standalone run.
    let plain = tiny_deck(4);
    let base = mas_mhd::run_supervised(&plain, CodeVersion::Ad, DeviceSpec::a100_40gb(), 2, 17, false)
        .expect("undisturbed baseline");

    let mut deck = tiny_deck(4);
    deck.checkpoint.interval = 2;
    deck.checkpoint.dir = temp_dir("rank_death").to_string_lossy().into_owned();
    deck.resilience.max_respawns = 1;
    deck.resilience.heartbeat_ms = 10;
    deck.resilience.miss_budget = 5;
    deck.resilience.recv_deadline_ms = 500;
    deck.fault.kind = FaultKind::Panic;
    deck.fault.step = 3;
    deck.fault.rank = 1;
    deck.fault.count = 1;

    let (server, client) = boot(2, 1, 8, 8);
    let status = client
        .run(JobSpec::new(deck).version(CodeVersion::Ad).ranks(2).seed(17))
        .expect("submit");
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    assert!(
        status.recovery_events > 0,
        "the death and restore must be streamed as progress"
    );
    let log = client.recovery_log(status.id).unwrap();
    assert!(
        log.iter().any(|l| l.contains("restored")),
        "recovery log: {log:?}"
    );

    let rep = client.result(status.id).unwrap().unwrap();
    for (a, b) in base.ranks.iter().zip(&rep.ranks) {
        assert_eq!(
            a.state_hash, b.state_hash,
            "rank {}: killed+recovered run must match the undisturbed run",
            a.rank
        );
        assert_eq!(b.steps, 4);
    }
    assert!(rep.ranks[0].recovery.respawns >= 1);
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_cancels_queued_work_and_rejects_new_submissions() {
    let (server, client) = boot(1, 1, 8, 8);
    let long = tiny_deck(100_000);
    let running = client.submit(JobSpec::new(long.clone()).seed(1)).unwrap();
    await_running(&client, running);
    let queued = client.submit(JobSpec::new(long.clone()).seed(2)).unwrap();

    server.shutdown();
    assert_eq!(
        client.submit(JobSpec::new(long).seed(3)),
        Err(SubmitError::ShuttingDown)
    );
    let s = client.wait(queued).unwrap();
    assert_eq!(s.state, JobState::Cancelled);
    assert_eq!(s.error.as_deref(), Some("server shutdown"));
    // The running job is asked to stop cooperatively and the workers
    // drain: join() must return.
    server.join();
    assert_eq!(client.status(running).unwrap().state, JobState::Cancelled);
}
