//! Crash-recovery integration tests: the write-ahead journal replayed
//! end-to-end through `Server::recover`.
//!
//! The "crash" here is simulated precisely: a journal is either built by
//! a real server that is then dropped without graceful shutdown (its
//! workers idle — nothing more will be written), or forged/corrupted on
//! disk byte-by-byte. The process-level SIGKILL variant of these checks
//! lives in `mas_serve --restart-drill` (run by CI), which kills a real
//! child server mid-job; these tests pin the replay semantics
//! deterministically.

use gpusim::DeviceSpec;
use mas_config::Deck;
use mas_serve::journal::{self, Journal, Record};
use mas_serve::{Client, JobId, JobSpec, JobState, Server, ServerConfig};
use std::path::PathBuf;
use stdpar::CodeVersion;

fn tiny_deck(n_steps: usize) -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = n_steps;
    d.output.hist_interval = 0;
    d
}

fn cfg(n_devices: usize, n_workers: usize) -> ServerConfig {
    let mut c = ServerConfig::new(DeviceSpec::a100_40gb(), n_devices);
    c.n_workers = n_workers;
    c
}

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mas_serve_recovery_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `spec` on a throwaway in-memory server and return its rank state
/// hashes — the uninterrupted baseline.
fn baseline_hashes(spec: JobSpec) -> Vec<u64> {
    let server = Server::start(cfg(2, 2));
    let client = Client::connect(server.clone());
    let id = client.submit(spec).expect("baseline submit");
    assert_eq!(client.wait(id).unwrap().state, JobState::Done);
    let report = client.result(id).unwrap().expect("baseline result");
    let hashes = report.ranks.iter().map(|r| r.state_hash).collect();
    server.shutdown();
    server.join();
    hashes
}

#[test]
fn forged_interrupted_journal_requeues_and_completes_bit_exact() {
    // Forge the journal a crashed server would leave behind: two jobs
    // accepted, one already claimed by a worker (Started), then death.
    let dir = state_dir("forged_interrupted");
    std::fs::create_dir_all(&dir).unwrap();
    let spec1 = JobSpec::new(tiny_deck(4)).seed(7).priority(1);
    let spec2 = JobSpec::new(tiny_deck(6)).seed(9).version(CodeVersion::Ad);
    {
        let (mut j, _) = Journal::open(dir.join("journal.log")).unwrap();
        j.append(1, &Record::Boot).unwrap();
        j.append(1, &Record::submitted(1, &spec1)).unwrap();
        j.append(1, &Record::submitted(2, &spec2)).unwrap();
        j.append(1, &Record::Started { id: 1 }).unwrap();
        // SIGKILL here: no Done, no CacheInsert.
    }

    let (server, summary) = Server::recover(cfg(2, 2), &dir).expect("recover");
    assert_eq!(summary.epoch, 2);
    assert_eq!(summary.requeued, 2, "queued AND running jobs re-enter the queue");
    assert_eq!(summary.done, 0);
    assert!(summary.torn.is_none());

    let client = Client::connect(server.clone());
    for (id, spec) in [(1u64, spec1), (2u64, spec2)] {
        let status = client.wait(JobId(id)).expect("recovered job exists");
        assert_eq!(status.state, JobState::Done, "job {id} finished after recovery");
        let report = client.result(JobId(id)).unwrap().expect("result");
        let got: Vec<u64> = report.ranks.iter().map(|r| r.state_hash).collect();
        assert_eq!(
            got,
            baseline_hashes(spec),
            "job {id}: post-recovery run is bit-exact vs an uninterrupted one"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn completed_results_survive_restart_as_zero_step_cache_hits() {
    let dir = state_dir("results_survive");
    let spec = JobSpec::new(tiny_deck(5)).seed(42);

    // Life 1: complete a job, then die without any graceful shutdown.
    let hashes_before: Vec<u64> = {
        let (server, _) = Server::recover(cfg(2, 2), &dir).expect("first boot");
        let client = Client::connect(server.clone());
        let id = client.submit(spec.clone()).expect("submit");
        assert_eq!(client.wait(id).unwrap().state, JobState::Done);
        let report = client.result(id).unwrap().expect("result");
        report.ranks.iter().map(|r| r.state_hash).collect()
        // Server dropped here: workers idle, journal closed mid-life —
        // exactly what SIGKILL after the last fsync looks like on disk.
    };

    // Life 2: the completion and its result must both be there.
    let (server, summary) = Server::recover(cfg(2, 2), &dir).expect("second boot");
    assert_eq!(summary.done, 1);
    assert_eq!(summary.cache_entries, 1);
    assert_eq!(summary.requeued, 0);
    let client = Client::connect(server.clone());

    // The old job id still answers, result intact.
    let report = client.result(JobId(1)).expect("known id").expect("result kept");
    let restored: Vec<u64> = report.ranks.iter().map(|r| r.state_hash).collect();
    assert_eq!(restored, hashes_before, "rehydrated report is bit-identical");

    // A resubmission is a submit-time cache hit: zero steps executed.
    let steps0 = server.total_steps();
    let id = client.submit(spec).expect("resubmit");
    let status = client.wait(id).unwrap();
    assert_eq!(status.state, JobState::Done);
    assert!(status.cached, "served from the recovered cache");
    assert_eq!(server.total_steps(), steps0, "zero steps after restart");
    server.shutdown();
    server.join();
}

#[test]
fn recovery_is_idempotent() {
    let dir = state_dir("idempotent");
    let spec = JobSpec::new(tiny_deck(4)).seed(3);
    {
        let (server, _) = Server::recover(cfg(2, 2), &dir).expect("first boot");
        let client = Client::connect(server.clone());
        let id = client.submit(spec).expect("submit");
        assert_eq!(client.wait(id).unwrap().state, JobState::Done);
    }
    // Boot twice more without doing anything: each replay must
    // reconstruct the same state, growing the journal only by its Boot
    // record.
    let (s2, sum2) = Server::recover(cfg(2, 2), &dir).expect("second boot");
    drop(s2);
    let (s3, sum3) = Server::recover(cfg(2, 2), &dir).expect("third boot");
    assert_eq!(sum3.done, sum2.done);
    assert_eq!(sum3.requeued, sum2.requeued);
    assert_eq!(sum3.cache_entries, sum2.cache_entries);
    assert_eq!(sum3.records, sum2.records + 1, "one Boot record per life");
    assert_eq!(sum3.epoch, sum2.epoch + 1);
    drop(s3);
}

#[test]
fn torn_tail_is_truncated_and_valid_prefix_survives() {
    let dir = state_dir("torn_tail");
    let spec = JobSpec::new(tiny_deck(4)).seed(5);
    {
        let (server, _) = Server::recover(cfg(2, 2), &dir).expect("first boot");
        let client = Client::connect(server.clone());
        let id = client.submit(spec.clone()).expect("submit");
        assert_eq!(client.wait(id).unwrap().state, JobState::Done);
    }
    // Simulate dying mid-append: a frame header promising more bytes
    // than exist.
    let path = dir.join("journal.log");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&200u32.to_le_bytes());
    bytes.extend_from_slice(b"only a few bytes of the promised record");
    std::fs::write(&path, &bytes).unwrap();

    let (server, summary) = Server::recover(cfg(2, 2), &dir).expect("recover over torn tail");
    assert!(summary.torn.is_some(), "tear reported: {summary}");
    assert!(summary.truncated_bytes > 0);
    assert_eq!(summary.done, 1, "valid prefix fully preserved");
    assert_eq!(summary.cache_entries, 1);
    let client = Client::connect(server.clone());
    assert!(client.result(JobId(1)).unwrap().is_ok());
    drop(server);

    // The tail is gone from disk: the next life sees a clean journal.
    let (_, sum2) = Server::recover(cfg(2, 2), &dir).expect("boot after truncation");
    assert!(sum2.torn.is_none(), "tear healed on the previous open");
    assert_eq!(sum2.truncated_bytes, 0);
    assert_eq!(sum2.done, 1);
}

#[test]
fn flipped_byte_never_resurrects_a_record() {
    let dir = state_dir("flipped_byte");
    std::fs::create_dir_all(&dir).unwrap();
    let spec1 = JobSpec::new(tiny_deck(4)).seed(5);
    let spec2 = JobSpec::new(tiny_deck(6)).seed(6);
    {
        let (mut j, _) = Journal::open(dir.join("journal.log")).unwrap();
        j.append(1, &Record::Boot).unwrap();
        j.append(1, &Record::submitted(1, &spec1)).unwrap();
        j.append(1, &Record::submitted(2, &spec2)).unwrap();
    }
    let path = dir.join("journal.log");
    let good = std::fs::read(&path).unwrap();

    // Flip one byte somewhere inside the *second* Submitted record: job
    // 1 must survive, job 2 must be dropped entirely (truncated, not
    // resurrected in mangled form), and recovery must not error.
    let rep = journal::replay(&path).unwrap();
    assert_eq!(rep.records.len(), 3);
    let mut corrupt = good.clone();
    let flip_at = good.len() - 40; // well inside the last record's body
    corrupt[flip_at] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();

    let (server, summary) = Server::recover(cfg(2, 2), &dir).expect("recover");
    assert!(summary.torn.is_some());
    assert_eq!(summary.requeued, 1, "only the intact submission replays");
    let client = Client::connect(server.clone());
    assert!(client.status(JobId(1)).is_some());
    assert!(client.status(JobId(2)).is_none(), "corrupted record never resurrects");
    assert_eq!(client.wait(JobId(1)).unwrap().state, JobState::Done);
    server.shutdown();
    server.join();
}

#[test]
fn evictions_are_journaled_and_survive_restart() {
    let dir = state_dir("evictions");
    let spec1 = JobSpec::new(tiny_deck(4)).seed(1);
    let spec2 = JobSpec::new(tiny_deck(4)).seed(2);
    {
        let mut c = cfg(2, 2);
        c.cache_max_entries = 1;
        let (server, _) = Server::recover(c, &dir).expect("first boot");
        let client = Client::connect(server.clone());
        for spec in [spec1.clone(), spec2.clone()] {
            let id = client.submit(spec).expect("submit");
            assert_eq!(client.wait(id).unwrap().state, JobState::Done);
        }
        let stats = client.stats();
        assert_eq!(stats.cache_entries, 1, "bound enforced live");
        assert_eq!(stats.cache_evictions, 1);
    }

    let mut c = cfg(2, 2);
    c.cache_max_entries = 1;
    let (server, summary) = Server::recover(c, &dir).expect("second boot");
    assert_eq!(summary.cache_entries, 1, "evicted entry stays evicted across restart");
    assert_eq!(summary.done, 2, "both completions survive");
    let client = Client::connect(server.clone());
    // Job 2's result is the one still cached; job 1 completed but its
    // report was evicted before the restart — a structured error, not a
    // panic or a silently wrong answer.
    assert!(client.result(JobId(2)).unwrap().is_ok());
    let gone = client.result(JobId(1)).unwrap();
    assert!(gone.is_err(), "evicted result answers structurally: {gone:?}");
    assert!(gone.unwrap_err().contains("evicted"));

    // Resubmitting the evicted deck recomputes (a miss, not a hit).
    let steps0 = server.total_steps();
    let id = client.submit(spec1).expect("resubmit evicted");
    assert_eq!(client.wait(id).unwrap().state, JobState::Done);
    assert!(server.total_steps() > steps0, "evicted result is recomputed");
    server.shutdown();
    server.join();
}

#[test]
fn drain_finishes_everything_and_the_next_life_requeues_nothing() {
    let dir = state_dir("drain");
    let (server, _) = Server::recover(cfg(2, 1), &dir).expect("boot");
    let client = Client::connect(server.clone());
    let mut ids = Vec::new();
    for seed in [21u64, 22, 23] {
        ids.push(client.submit(JobSpec::new(tiny_deck(4)).seed(seed)).expect("submit"));
    }
    server.drain();
    server.join();
    for id in ids {
        assert_eq!(client.status(id).unwrap().state, JobState::Done, "{id} finished in drain");
    }
    // Intake is closed once draining.
    assert!(client.submit(JobSpec::new(tiny_deck(4)).seed(99)).is_err());
    drop(client);
    drop(server);

    let (_, summary) = Server::recover(cfg(2, 1), &dir).expect("post-drain boot");
    assert_eq!(summary.requeued, 0, "drain left no interrupted work behind");
    assert_eq!(summary.done, 3);
}

#[test]
fn duplicate_recovered_submissions_collapse_at_claim_time() {
    // A client that retried a submit across the crash leaves two
    // Submitted records for the same cache key. After one completes,
    // the duplicate must collapse to a cached Done at claim time,
    // leasing no devices and running zero steps.
    let dir = state_dir("dup_collapse");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = JobSpec::new(tiny_deck(4)).seed(77);
    {
        let (mut j, _) = Journal::open(dir.join("journal.log")).unwrap();
        j.append(1, &Record::Boot).unwrap();
        j.append(1, &Record::submitted(1, &spec)).unwrap();
        j.append(1, &Record::submitted(2, &spec)).unwrap();
    }
    let (server, summary) = Server::recover(cfg(2, 1), &dir).expect("recover");
    assert_eq!(summary.requeued, 2);
    let client = Client::connect(server.clone());
    let s1 = client.wait(JobId(1)).unwrap();
    let s2 = client.wait(JobId(2)).unwrap();
    assert_eq!((s1.state, s2.state), (JobState::Done, JobState::Done));
    assert!(
        s1.cached != s2.cached,
        "exactly one of the duplicates actually ran (cached: {} / {})",
        s1.cached,
        s2.cached
    );
    let r1 = client.result(JobId(1)).unwrap().expect("result 1");
    let r2 = client.result(JobId(2)).unwrap().expect("result 2");
    assert_eq!(
        r1.ranks.iter().map(|r| r.state_hash).collect::<Vec<_>>(),
        r2.ranks.iter().map(|r| r.state_hash).collect::<Vec<_>>(),
        "both ids answer with the identical report"
    );
    server.shutdown();
    server.join();
}

#[test]
fn stale_code_rev_cache_entries_are_dropped() {
    // A CacheInsert stamped with another build's code_rev must not be
    // served: the deck reruns instead.
    let dir = state_dir("stale_rev");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = JobSpec::new(tiny_deck(4)).seed(13);
    {
        let (mut j, _) = Journal::open(dir.join("journal.log")).unwrap();
        j.append(1, &Record::Boot).unwrap();
        j.append(1, &Record::submitted(1, &spec)).unwrap();
        j.append(
            1,
            &Record::CacheInsert {
                deck_hash: spec.deck.content_hash(),
                version_tag: "A".into(),
                code_rev: "0.0.0-older-build".into(),
                n_ranks: 1,
                seed: 13,
                report: journal::PersistedReport {
                    version_tag: "A".into(),
                    ranks: vec![],
                },
            },
        )
        .unwrap();
        j.append(1, &Record::Done { id: 1, cached: false }).unwrap();
    }
    let (server, summary) = Server::recover(cfg(2, 1), &dir).expect("recover");
    assert_eq!(summary.dropped_stale_cache, 1);
    assert_eq!(summary.cache_entries, 0);
    let client = Client::connect(server.clone());
    // The job is Done but its (stale) result is gone — structured error.
    assert!(client.result(JobId(1)).unwrap().is_err());
    // Resubmission recomputes with this build.
    let id = client.submit(spec).expect("resubmit");
    let status = client.wait(id).unwrap();
    assert_eq!(status.state, JobState::Done);
    assert!(!status.cached, "stale entry was not served");
    server.shutdown();
    server.join();
}

#[test]
fn pool_ledger_is_balanced_after_recovery_while_jobs_rerun() {
    let dir = state_dir("pool_ledger");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = JobSpec::new(tiny_deck(4)).seed(31).ranks(2);
    {
        let (mut j, _) = Journal::open(dir.join("journal.log")).unwrap();
        j.append(1, &Record::Boot).unwrap();
        j.append(1, &Record::submitted(1, &spec)).unwrap();
        // Crashed while holding a 2-device lease.
        j.append(1, &Record::Started { id: 1 }).unwrap();
    }
    let (server, _) = Server::recover(cfg(2, 1), &dir).expect("recover");
    let client = Client::connect(server.clone());
    assert_eq!(client.wait(JobId(1)).unwrap().state, JobState::Done);
    let stats = client.stats();
    // Every lease taken after recovery was returned; nothing leaked
    // across the restart boundary.
    assert_eq!(stats.pool.busy, 0);
    assert_eq!(stats.pool.leases_granted, stats.pool.leases_released);
    assert!(stats.pool.leases_granted >= 1, "the rerun actually leased");
    server.shutdown();
    server.join();
}

#[test]
fn quarantine_survives_restart_and_clear_is_journaled() {
    let dir = state_dir("quarantine_survives");
    let mut deck = tiny_deck(4);
    deck.problem = "chaos-panic".into();
    let spec = JobSpec::new(deck).seed(7).max_attempts(1);

    // Life 1: the crash-looping run is quarantined, then the server dies
    // without grace.
    {
        let (server, _) = Server::recover(cfg(2, 2), &dir).expect("first boot");
        let client = Client::connect(server.clone());
        let id = client.submit(spec.clone()).expect("submit");
        assert_eq!(client.wait(id).unwrap().state, JobState::Quarantined);
    }

    // Life 2: the quarantine replays from the journal and still refuses
    // the run — the crash loop cannot restart by restarting the server.
    {
        let (server, summary) = Server::recover(cfg(2, 2), &dir).expect("second boot");
        assert_eq!(summary.quarantined, 1, "job restored in Quarantined state");
        assert_eq!(summary.quarantine_keys, 1, "key still embargoed");
        assert_eq!(summary.requeued, 0, "a quarantined job is terminal, not interrupted");
        let client = Client::connect(server.clone());
        assert!(
            matches!(
                client.submit(spec.clone()),
                Err(mas_serve::SubmitError::Quarantined { .. })
            ),
            "resubmission refused after restart"
        );
        // Operator lifts it; the clear is itself journaled.
        assert_eq!(client.quarantine_clear(None), 1);
    }

    // Life 3: the clear survives too — the key submits again.
    let (server, summary) = Server::recover(cfg(2, 2), &dir).expect("third boot");
    assert_eq!(summary.quarantine_keys, 0, "cleared quarantine stays cleared");
    let client = Client::connect(server.clone());
    client.submit(spec).expect("cleared key accepted after restart");
    server.shutdown();
    server.join();
}
