//! The in-process client: the job API (`submit` / `status` / `cancel` /
//! `wait` / `result`) against a [`Server`] living in the same process.
//!
//! This is the interface the integration tests exercise end-to-end; the
//! `mas_serve` binary speaks the same API over TCP (see [`crate::wire`]),
//! so anything proven here holds for remote clients too.

use crate::job::{JobId, JobSpec, JobStatus};
use crate::server::{Server, ServerStats, SubmitError};
use mas_mhd::MultiRankReport;
use std::sync::Arc;

/// A handle onto a server. Cheap to clone; many clients may drive one
/// server concurrently.
#[derive(Clone)]
pub struct Client {
    server: Arc<Server>,
}

impl Client {
    /// Connect to an in-process server.
    pub fn connect(server: Arc<Server>) -> Self {
        Self { server }
    }

    /// Submit a job (see [`Server::submit`]).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.server.submit(spec)
    }

    /// Poll a job's status.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.server.status(id)
    }

    /// The recovery events streamed so far.
    pub fn recovery_log(&self, id: JobId) -> Option<Vec<String>> {
        self.server.recovery_log(id)
    }

    /// Block until the job finishes; returns its final status.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        self.server.wait(id)
    }

    /// Fetch a finished job's result.
    #[allow(clippy::type_complexity)]
    pub fn result(&self, id: JobId) -> Option<Result<Arc<MultiRankReport>, String>> {
        self.server.result(id)
    }

    /// Cancel a job (cooperative when it is already running).
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        self.server.cancel(id)
    }

    /// Server-wide counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Submit and block to completion: the one-call convenience path.
    /// Returns the final status; inspect/fetch the report via
    /// [`Client::result`].
    pub fn run(&self, spec: JobSpec) -> Result<JobStatus, SubmitError> {
        let id = self.submit(spec)?;
        Ok(self.wait(id).expect("submitted job exists"))
    }
}
