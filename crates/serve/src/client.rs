//! Clients: the in-process [`Client`] (the job API against a [`Server`]
//! in the same process — what the integration tests exercise
//! end-to-end) and the [`RemoteClient`] (the same verbs over the TCP
//! wire protocol, with bounded retry-with-backoff).
//!
//! Retrying a submission is safe *because* submission is idempotent
//! under the cache key: if the first attempt actually reached the
//! server before the connection died, the retry either collapses to a
//! cache hit (run already finished) or enqueues a duplicate that the
//! claim-time cache probe collapses to zero steps. At-least-once
//! delivery therefore costs nothing beyond a duplicate job id.

use crate::job::{JobId, JobSpec, JobStatus};
use crate::server::{Server, ServerStats, SubmitError};
use crate::wire::{self, WireRead};
use mas_mhd::MultiRankReport;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A handle onto a server. Cheap to clone; many clients may drive one
/// server concurrently.
#[derive(Clone)]
pub struct Client {
    server: Arc<Server>,
}

impl Client {
    /// Connect to an in-process server.
    pub fn connect(server: Arc<Server>) -> Self {
        Self { server }
    }

    /// Submit a job (see [`Server::submit`]).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.server.submit(spec)
    }

    /// Poll a job's status.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.server.status(id)
    }

    /// The recovery events streamed so far.
    pub fn recovery_log(&self, id: JobId) -> Option<Vec<String>> {
        self.server.recovery_log(id)
    }

    /// Block until the job finishes; returns its final status.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        self.server.wait(id)
    }

    /// Fetch a finished job's result.
    #[allow(clippy::type_complexity)]
    pub fn result(&self, id: JobId) -> Option<Result<Arc<MultiRankReport>, String>> {
        self.server.result(id)
    }

    /// Cancel a job (cooperative when it is already running).
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        self.server.cancel(id)
    }

    /// Server-wide counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Quarantined run keys with their final failure messages.
    pub fn quarantine_list(&self) -> Vec<(crate::cache::CacheKey, String)> {
        self.server.quarantine_list()
    }

    /// Clear the quarantine (all keys, or one deck hash); returns how
    /// many keys were cleared.
    pub fn quarantine_clear(&self, deck_hash: Option<u64>) -> usize {
        self.server.quarantine_clear(deck_hash)
    }

    /// Submit and block to completion: the one-call convenience path.
    /// Returns the final status; inspect/fetch the report via
    /// [`Client::result`].
    pub fn run(&self, spec: JobSpec) -> Result<JobStatus, SubmitError> {
        let id = self.submit(spec)?;
        Ok(self.wait(id).expect("submitted job exists"))
    }
}

/// How a [`RemoteClient`] survives transient failures: a bounded number
/// of attempts with exponential backoff between them, plus an I/O
/// deadline per request so a hung server can't pin the caller. Each
/// backoff carries bounded *seeded* jitter (±25%, derived
/// deterministically from `jitter_seed` and the retry index), so a
/// fleet of clients knocked back by the same overload don't re-arrive
/// in lockstep — yet a drill that fixes the seed replays the exact same
/// delays.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling (jitter is applied after the cap, so the
    /// effective worst case is `max_delay * 1.25`).
    pub max_delay: Duration,
    /// Read/write deadline per attempt. `None` waits indefinitely
    /// (only sensible for `wait`, which blocks by design).
    pub io_timeout: Option<Duration>,
    /// Seed for the deterministic backoff jitter. Two clients with
    /// different seeds spread out; the same seed replays identically.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(10)),
            jitter_seed: 0,
        }
    }
}

/// One round of the xorshift64 generator (Marsaglia) — enough
/// statistical spread for backoff jitter without any dependency.
fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

impl RetryPolicy {
    fn delay(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(10);
        let base = self.base_delay.saturating_mul(factor).min(self.max_delay);
        // Scale by a deterministic factor in [0.75, 1.25): seeded, so a
        // chaos drill that pins the seed reproduces every sleep.
        let r = xorshift64(
            self.jitter_seed ^ (u64::from(retry) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let scale = 0.75 + (r % 1000) as f64 / 2000.0;
        base.mul_f64(scale)
    }
}

/// A TCP client for the `mas_serve` wire protocol: one connection per
/// request (the protocol is one line each way), transparent bounded
/// retry on connect and I/O failures.
#[derive(Clone, Debug)]
pub struct RemoteClient {
    addr: String,
    policy: RetryPolicy,
}

impl RemoteClient {
    /// A client for the server at `addr` (e.g. `127.0.0.1:7070`) with
    /// the default retry policy.
    pub fn connect(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            policy: RetryPolicy::default(),
        }
    }

    /// Override the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Send one request line, return the one response line. Retries
    /// transient failures per the policy; a server-sent `err …` line is
    /// returned as `Ok` (it is an answer, not a transport failure) —
    /// callers split on the `ok `/`err ` prefix.
    pub fn request(&self, line: &str) -> Result<String, String> {
        self.request_with_timeout(line, self.policy.io_timeout)
    }

    /// [`RemoteClient::request`] with an explicit per-attempt deadline
    /// (`None` = block indefinitely — what `wait` needs).
    pub fn request_with_timeout(
        &self,
        line: &str,
        timeout: Option<Duration>,
    ) -> Result<String, String> {
        let mut last_err = String::new();
        let mut retry_after: Option<Duration> = None;
        for retry in 0..self.policy.max_attempts {
            if retry > 0 {
                // An overloaded server named its own comeback time;
                // honor it (still jittered by the policy's backoff, so
                // shed clients don't stampede back as one).
                let backoff = self.policy.delay(retry - 1);
                std::thread::sleep(retry_after.take().map_or(backoff, |ra| ra.max(backoff)));
            }
            match self.attempt(line, timeout) {
                Ok(reply) => {
                    match Self::retry_after_of(&reply) {
                        Some(ra) => {
                            retry_after = Some(ra);
                            last_err = reply;
                        }
                        // Any other server answer — ok or err — is final.
                        None => return Ok(reply),
                    }
                }
                Err(e) => last_err = e,
            }
        }
        Err(format!(
            "request failed after {} attempt(s): {last_err}",
            self.policy.max_attempts
        ))
    }

    /// The retry-after hint in an overload rejection (`err … retry_after_ms=N`),
    /// if this reply carries one.
    fn retry_after_of(reply: &str) -> Option<Duration> {
        if !reply.starts_with("err ") {
            return None;
        }
        let ms: u64 = Self::field(reply, "retry_after_ms").ok()?.parse().ok()?;
        Some(Duration::from_millis(ms))
    }

    fn attempt(&self, line: &str, timeout: Option<Duration>) -> Result<String, String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(timeout)
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(|e| format!("set deadline: {e}"))?;
        let mut w = &stream;
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(&stream);
        match wire::read_request_line(&mut reader).map_err(|e| format!("recv: {e}"))? {
            WireRead::Line(reply) => Ok(reply),
            WireRead::Eof => Err("server closed the connection before replying".into()),
            WireRead::TooLong => Err("oversized reply line".into()),
            WireRead::BadUtf8 => Err("non-UTF-8 reply line".into()),
        }
    }

    /// Submit a spec; returns the job id the server assigned.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, String> {
        let reply = self.request(&wire::encode_submit(spec))?;
        Self::field(&reply, "id")?.parse().map_err(|e| format!("bad id in '{reply}': {e}"))
    }

    /// One status snapshot line (`ok id=… state=… …`).
    pub fn status(&self, id: u64) -> Result<String, String> {
        self.request(&format!("status id={id}"))
    }

    /// Block until the job is terminal; returns its final status line.
    /// No read deadline — waiting is the point.
    pub fn wait(&self, id: u64) -> Result<String, String> {
        self.request_with_timeout(&format!("wait id={id}"), None)
    }

    /// The result summary line for a finished job.
    pub fn result(&self, id: u64) -> Result<String, String> {
        self.request(&format!("result id={id}"))
    }

    /// Cancel a job.
    pub fn cancel(&self, id: u64) -> Result<String, String> {
        self.request(&format!("cancel id={id}"))
    }

    /// Server counters line.
    pub fn stats(&self) -> Result<String, String> {
        self.request("stats")
    }

    /// List quarantined run keys.
    pub fn quarantine_list(&self) -> Result<String, String> {
        self.request("quarantine list")
    }

    /// Clear the quarantine (all keys, or one deck hash).
    pub fn quarantine_clear(&self, deck_hash: Option<u64>) -> Result<String, String> {
        match deck_hash {
            Some(h) => self.request(&format!("quarantine clear hash={h}")),
            None => self.request("quarantine clear"),
        }
    }

    /// Arm `count` injected faults on a pool device (chaos drills).
    pub fn inject(&self, device: usize, count: u32) -> Result<String, String> {
        self.request(&format!("inject device={device} count={count}"))
    }

    /// Drain the server: intake closes, every queued and running job
    /// finishes, then the server exits. Blocks until the drain
    /// completes (no deadline).
    pub fn drain(&self) -> Result<String, String> {
        self.request_with_timeout("drain", None)
    }

    /// Stop the server immediately (queued jobs are cancelled).
    pub fn shutdown(&self) -> Result<String, String> {
        self.request("shutdown")
    }

    /// Extract `key=value` from a reply line.
    pub fn field(reply: &str, key: &str) -> Result<String, String> {
        reply
            .split_whitespace()
            .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
            .map(str::to_string)
            .ok_or_else(|| format!("no '{key}=' in reply '{reply}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_jitter_is_bounded_and_seed_deterministic() {
        let a = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let c = RetryPolicy {
            jitter_seed: 8,
            ..RetryPolicy::default()
        };
        for retry in 0..6 {
            // Same seed → identical delays (a chaos drill replays them).
            assert_eq!(a.delay(retry), b.delay(retry));
            // Jitter stays inside ±25% of the un-jittered schedule.
            let base = a
                .base_delay
                .saturating_mul(1 << retry.min(10))
                .min(a.max_delay);
            let d = a.delay(retry);
            assert!(d >= base.mul_f64(0.75) && d < base.mul_f64(1.25), "{d:?}");
        }
        // Different seeds actually spread (at least one retry differs).
        assert!((0..6).any(|r| a.delay(r) != c.delay(r)));
    }

    #[test]
    fn retry_after_hint_is_parsed_from_err_lines_only() {
        assert_eq!(
            RemoteClient::retry_after_of("err server overloaded retry_after_ms=250"),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            RemoteClient::retry_after_of("ok id=1 retry_after_ms=250"),
            None
        );
        assert_eq!(RemoteClient::retry_after_of("err queue full"), None);
        assert_eq!(
            RemoteClient::retry_after_of("err bad retry_after_ms=abc"),
            None
        );
    }
}
