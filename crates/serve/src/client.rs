//! Clients: the in-process [`Client`] (the job API against a [`Server`]
//! in the same process — what the integration tests exercise
//! end-to-end) and the [`RemoteClient`] (the same verbs over the TCP
//! wire protocol, with bounded retry-with-backoff).
//!
//! Retrying a submission is safe *because* submission is idempotent
//! under the cache key: if the first attempt actually reached the
//! server before the connection died, the retry either collapses to a
//! cache hit (run already finished) or enqueues a duplicate that the
//! claim-time cache probe collapses to zero steps. At-least-once
//! delivery therefore costs nothing beyond a duplicate job id.

use crate::job::{JobId, JobSpec, JobStatus};
use crate::server::{Server, ServerStats, SubmitError};
use crate::wire::{self, WireRead};
use mas_mhd::MultiRankReport;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A handle onto a server. Cheap to clone; many clients may drive one
/// server concurrently.
#[derive(Clone)]
pub struct Client {
    server: Arc<Server>,
}

impl Client {
    /// Connect to an in-process server.
    pub fn connect(server: Arc<Server>) -> Self {
        Self { server }
    }

    /// Submit a job (see [`Server::submit`]).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.server.submit(spec)
    }

    /// Poll a job's status.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.server.status(id)
    }

    /// The recovery events streamed so far.
    pub fn recovery_log(&self, id: JobId) -> Option<Vec<String>> {
        self.server.recovery_log(id)
    }

    /// Block until the job finishes; returns its final status.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        self.server.wait(id)
    }

    /// Fetch a finished job's result.
    #[allow(clippy::type_complexity)]
    pub fn result(&self, id: JobId) -> Option<Result<Arc<MultiRankReport>, String>> {
        self.server.result(id)
    }

    /// Cancel a job (cooperative when it is already running).
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        self.server.cancel(id)
    }

    /// Server-wide counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Submit and block to completion: the one-call convenience path.
    /// Returns the final status; inspect/fetch the report via
    /// [`Client::result`].
    pub fn run(&self, spec: JobSpec) -> Result<JobStatus, SubmitError> {
        let id = self.submit(spec)?;
        Ok(self.wait(id).expect("submitted job exists"))
    }
}

/// How a [`RemoteClient`] survives transient failures: a bounded number
/// of attempts with exponential backoff between them, plus an I/O
/// deadline per request so a hung server can't pin the caller.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Read/write deadline per attempt. `None` waits indefinitely
    /// (only sensible for `wait`, which blocks by design).
    pub io_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl RetryPolicy {
    fn delay(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(10);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// A TCP client for the `mas_serve` wire protocol: one connection per
/// request (the protocol is one line each way), transparent bounded
/// retry on connect and I/O failures.
#[derive(Clone, Debug)]
pub struct RemoteClient {
    addr: String,
    policy: RetryPolicy,
}

impl RemoteClient {
    /// A client for the server at `addr` (e.g. `127.0.0.1:7070`) with
    /// the default retry policy.
    pub fn connect(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            policy: RetryPolicy::default(),
        }
    }

    /// Override the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Send one request line, return the one response line. Retries
    /// transient failures per the policy; a server-sent `err …` line is
    /// returned as `Ok` (it is an answer, not a transport failure) —
    /// callers split on the `ok `/`err ` prefix.
    pub fn request(&self, line: &str) -> Result<String, String> {
        self.request_with_timeout(line, self.policy.io_timeout)
    }

    /// [`RemoteClient::request`] with an explicit per-attempt deadline
    /// (`None` = block indefinitely — what `wait` needs).
    pub fn request_with_timeout(
        &self,
        line: &str,
        timeout: Option<Duration>,
    ) -> Result<String, String> {
        let mut last_err = String::new();
        for retry in 0..self.policy.max_attempts {
            if retry > 0 {
                std::thread::sleep(self.policy.delay(retry - 1));
            }
            match self.attempt(line, timeout) {
                Ok(reply) => return Ok(reply),
                Err(e) => last_err = e,
            }
        }
        Err(format!(
            "request failed after {} attempt(s): {last_err}",
            self.policy.max_attempts
        ))
    }

    fn attempt(&self, line: &str, timeout: Option<Duration>) -> Result<String, String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(timeout)
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(|e| format!("set deadline: {e}"))?;
        let mut w = &stream;
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(&stream);
        match wire::read_request_line(&mut reader).map_err(|e| format!("recv: {e}"))? {
            WireRead::Line(reply) => Ok(reply),
            WireRead::Eof => Err("server closed the connection before replying".into()),
            WireRead::TooLong => Err("oversized reply line".into()),
            WireRead::BadUtf8 => Err("non-UTF-8 reply line".into()),
        }
    }

    /// Submit a spec; returns the job id the server assigned.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, String> {
        let reply = self.request(&wire::encode_submit(spec))?;
        Self::field(&reply, "id")?.parse().map_err(|e| format!("bad id in '{reply}': {e}"))
    }

    /// One status snapshot line (`ok id=… state=… …`).
    pub fn status(&self, id: u64) -> Result<String, String> {
        self.request(&format!("status id={id}"))
    }

    /// Block until the job is terminal; returns its final status line.
    /// No read deadline — waiting is the point.
    pub fn wait(&self, id: u64) -> Result<String, String> {
        self.request_with_timeout(&format!("wait id={id}"), None)
    }

    /// The result summary line for a finished job.
    pub fn result(&self, id: u64) -> Result<String, String> {
        self.request(&format!("result id={id}"))
    }

    /// Cancel a job.
    pub fn cancel(&self, id: u64) -> Result<String, String> {
        self.request(&format!("cancel id={id}"))
    }

    /// Server counters line.
    pub fn stats(&self) -> Result<String, String> {
        self.request("stats")
    }

    /// Drain the server: intake closes, every queued and running job
    /// finishes, then the server exits. Blocks until the drain
    /// completes (no deadline).
    pub fn drain(&self) -> Result<String, String> {
        self.request_with_timeout("drain", None)
    }

    /// Stop the server immediately (queued jobs are cancelled).
    pub fn shutdown(&self) -> Result<String, String> {
        self.request("shutdown")
    }

    /// Extract `key=value` from a reply line.
    pub fn field(reply: &str, key: &str) -> Result<String, String> {
        reply
            .split_whitespace()
            .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
            .map(str::to_string)
            .ok_or_else(|| format!("no '{key}=' in reply '{reply}'"))
    }
}
