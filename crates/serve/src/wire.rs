//! The line protocol the `mas_serve` TCP binary speaks: one request per
//! line, one response line per request. Text, not binary — debuggable
//! with `nc`, stable to diff in CI logs.
//!
//! Requests:
//!
//! ```text
//! submit tenant=<t> version=<TAG> ranks=<n> seed=<u64> priority=<i32> [deadline=<ms>] [attempts=<n>] deck=<escaped deck text>
//! status id=<n>
//! wait id=<n>
//! cancel id=<n>
//! result id=<n>
//! stats
//! quarantine list
//! quarantine clear [hash=<u64>]
//! inject device=<n> [count=<k>]
//! drain
//! shutdown
//! ```
//!
//! `deck=` is always the last key: its value is the rest of the line,
//! with newlines and backslashes escaped by [`escape`]. Responses are
//! `ok …` / `err <message>` lines built with the same `key=value`
//! grammar (see the `mas_serve` binary).
//!
//! The server's edge reads request lines through [`read_request_line`],
//! which bounds every line to [`MAX_LINE`] bytes and classifies
//! oversized or non-UTF-8 input as structured [`WireRead`] outcomes —
//! a hostile or broken peer gets an `err …` reply and a closed
//! connection, never an unbounded buffer or a panicked thread.

use crate::job::{JobSpec, JobStatus};
use mas_config::Deck;
use std::io::{self, BufRead};
use stdpar::CodeVersion;

/// Hard cap on one wire line (requests and responses). Generous — the
/// longest legitimate line is a `submit` carrying one escaped deck,
/// well under 64 KiB — while keeping a hostile peer from ballooning
/// server memory one byte at a time.
pub const MAX_LINE: usize = 1 << 20;

/// Escape a multi-line text into a single protocol-safe line token.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`].
pub fn unescape(line: &str) -> Result<String, String> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape '\\{other}'")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit the job described by the spec.
    Submit(Box<JobSpec>),
    /// Status snapshot.
    Status(u64),
    /// Block until terminal, then status.
    Wait(u64),
    /// Cancel.
    Cancel(u64),
    /// Fetch result summary.
    Result(u64),
    /// Server counters.
    Stats,
    /// List quarantined run keys (crash-loop circuit breaker).
    QuarantineList,
    /// Clear the quarantine: every key, or those matching one deck hash.
    QuarantineClear(Option<u64>),
    /// Inject `count` deterministic faults into one pool device (chaos
    /// drills and tests; each fault fails one attempt scheduled there).
    Inject {
        /// Target device slot.
        device: usize,
        /// Faults to arm.
        count: u32,
    },
    /// Stop intake, finish every queued and running job, then stop.
    Drain,
    /// Stop the server.
    Shutdown,
}

/// One bounded read off a wire connection (see [`read_request_line`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WireRead {
    /// A complete line (terminator stripped).
    Line(String),
    /// The peer closed the connection cleanly.
    Eof,
    /// The line exceeded [`MAX_LINE`] before a newline arrived. The
    /// excess has been consumed up to the cap; the connection should be
    /// answered with an error and closed.
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
}

/// Read one request line from `reader`, never buffering more than
/// [`MAX_LINE`] bytes. Unlike `BufRead::read_line`, a peer that sends
/// an endless line (or garbage bytes) costs bounded memory and gets a
/// structured verdict instead of poisoning the stream.
pub fn read_request_line(reader: &mut impl BufRead) -> io::Result<WireRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(WireRead::Eof)
            } else {
                // A final line without a terminator still counts.
                Ok(finish_line(line))
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if line.len() + nl > MAX_LINE {
                    reader.consume(nl + 1);
                    return Ok(WireRead::TooLong);
                }
                line.extend_from_slice(&buf[..nl]);
                reader.consume(nl + 1);
                return Ok(finish_line(line));
            }
            None => {
                let n = buf.len();
                if line.len() + n > MAX_LINE {
                    reader.consume(n);
                    return Ok(WireRead::TooLong);
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

fn finish_line(mut line: Vec<u8>) -> WireRead {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(s) => WireRead::Line(s),
        Err(_) => WireRead::BadUtf8,
    }
}

/// Parse a code-version tag (`A`, `AD`, …, case-insensitive).
pub fn parse_version(tag: &str) -> Result<CodeVersion, String> {
    CodeVersion::ALL
        .into_iter()
        .find(|v| v.tag().eq_ignore_ascii_case(tag))
        .ok_or_else(|| format!("unknown code version '{tag}'"))
}

fn field<'a>(words: &'a [&str], key: &str) -> Result<&'a str, String> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
        .ok_or_else(|| format!("missing field '{key}='"))
}

fn opt_field<'a>(words: &'a [&str], key: &str) -> Option<&'a str> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
}

fn id_of(words: &[&str]) -> Result<u64, String> {
    field(words, "id")?
        .parse()
        .map_err(|e| format!("bad id: {e}"))
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
    match verb {
        "submit" => {
            // `deck=` swallows the rest of the line; split it off first
            // so deck text containing spaces survives.
            let (head, deck) = rest
                .split_once("deck=")
                .ok_or("submit needs a deck= field")?;
            let words: Vec<&str> = head.split_whitespace().collect();
            let deck_text = unescape(deck)?;
            let deck = Deck::parse(&deck_text).map_err(|e| e.to_string())?;
            let spec = JobSpec::new(deck)
                .tenant(field(&words, "tenant")?)
                .version(parse_version(field(&words, "version")?)?)
                .ranks(
                    field(&words, "ranks")?
                        .parse()
                        .map_err(|e| format!("bad ranks: {e}"))?,
                )
                .seed(
                    field(&words, "seed")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?,
                )
                .priority(
                    field(&words, "priority")?
                        .parse()
                        .map_err(|e| format!("bad priority: {e}"))?,
                );
            // Optional serving-policy overrides; absent, the deck's
            // `&serve` section (already parsed above) stands.
            let spec = match opt_field(&words, "deadline") {
                Some(v) => spec
                    .deadline_ms(v.parse().map_err(|e| format!("bad deadline: {e}"))?),
                None => spec,
            };
            let spec = match opt_field(&words, "attempts") {
                Some(v) => spec
                    .max_attempts(v.parse().map_err(|e| format!("bad attempts: {e}"))?),
                None => spec,
            };
            Ok(Request::Submit(Box::new(spec)))
        }
        "status" => Ok(Request::Status(id_of(
            &rest.split_whitespace().collect::<Vec<_>>(),
        )?)),
        "wait" => Ok(Request::Wait(id_of(
            &rest.split_whitespace().collect::<Vec<_>>(),
        )?)),
        "cancel" => Ok(Request::Cancel(id_of(
            &rest.split_whitespace().collect::<Vec<_>>(),
        )?)),
        "result" => Ok(Request::Result(id_of(
            &rest.split_whitespace().collect::<Vec<_>>(),
        )?)),
        "stats" => Ok(Request::Stats),
        "quarantine" => {
            let words: Vec<&str> = rest.split_whitespace().collect();
            match words.first().copied() {
                Some("list") => Ok(Request::QuarantineList),
                Some("clear") => {
                    let hash = match opt_field(&words, "hash") {
                        Some(v) => {
                            Some(v.parse().map_err(|e| format!("bad hash: {e}"))?)
                        }
                        None => None,
                    };
                    Ok(Request::QuarantineClear(hash))
                }
                _ => Err("quarantine needs 'list' or 'clear'".into()),
            }
        }
        "inject" => {
            let words: Vec<&str> = rest.split_whitespace().collect();
            let device = field(&words, "device")?
                .parse()
                .map_err(|e| format!("bad device: {e}"))?;
            let count = match opt_field(&words, "count") {
                Some(v) => v.parse().map_err(|e| format!("bad count: {e}"))?,
                None => 1,
            };
            Ok(Request::Inject { device, count })
        }
        "drain" => Ok(Request::Drain),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request '{other}'")),
    }
}

/// Format a submit line for a spec (what a remote client sends).
pub fn encode_submit(spec: &JobSpec) -> String {
    format!(
        "submit tenant={} version={} ranks={} seed={} priority={} deadline={} attempts={} deck={}",
        spec.tenant,
        spec.version.tag(),
        spec.n_ranks,
        spec.seed,
        spec.priority,
        spec.deadline_ms,
        spec.max_attempts,
        escape(&spec.deck.to_deck_string()),
    )
}

/// Format a status response line.
pub fn encode_status(s: &JobStatus) -> String {
    let mut line = format!(
        "ok id={} state={} steps={}/{} recovery={} cached={}",
        s.id.0,
        s.state.name(),
        s.steps_done,
        s.n_steps,
        s.recovery_events,
        s.cached,
    );
    if let Some(e) = &s.error {
        line.push_str(" error=");
        line.push_str(&escape(e));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobState};

    #[test]
    fn escape_roundtrips() {
        let text = "line one\nline \\two\r\nthree";
        assert_eq!(unescape(&escape(text)).unwrap(), text);
        assert!(!escape(text).contains('\n'));
        assert!(unescape("bad \\q").is_err());
        assert!(unescape("dangling \\").is_err());
    }

    #[test]
    fn submit_line_roundtrips_the_spec() {
        let spec = JobSpec::new(Deck::preset_quickstart())
            .tenant("helio")
            .version(CodeVersion::Ad2xu)
            .ranks(2)
            .seed(42)
            .priority(-3);
        let line = encode_submit(&spec);
        let Request::Submit(back) = parse_request(&line).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(back.tenant, "helio");
        assert_eq!(back.version, CodeVersion::Ad2xu);
        assert_eq!(back.n_ranks, 2);
        assert_eq!(back.seed, 42);
        assert_eq!(back.priority, -3);
        assert_eq!(
            back.deck.content_hash(),
            spec.deck.content_hash(),
            "deck survives the wire by content"
        );
    }

    #[test]
    fn submit_line_roundtrips_serving_policy() {
        let spec = JobSpec::new(Deck::preset_quickstart())
            .deadline_ms(750)
            .max_attempts(3);
        let Request::Submit(back) = parse_request(&wire_line(&spec)).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(back.deadline_ms, 750);
        assert_eq!(back.max_attempts, 3);
        // Explicit fields beat the deck's &serve section.
        let line = wire_line(&spec).replace("deadline=750", "deadline=123");
        let Request::Submit(back) = parse_request(&line).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!(back.deadline_ms, 123);
        // Without the fields, the &serve section in the deck text stands.
        let bare = format!(
            "submit tenant=t version=A ranks=1 seed=0 priority=0 deck={}",
            escape(&spec.deck.to_deck_string())
        );
        let Request::Submit(back) = parse_request(&bare).unwrap() else {
            panic!("not a submit");
        };
        assert_eq!((back.deadline_ms, back.max_attempts), (750, 3));
    }

    fn wire_line(spec: &JobSpec) -> String {
        encode_submit(spec)
    }

    #[test]
    fn quarantine_and_inject_requests_parse() {
        assert_eq!(
            parse_request("quarantine list").unwrap(),
            Request::QuarantineList
        );
        assert_eq!(
            parse_request("quarantine clear").unwrap(),
            Request::QuarantineClear(None)
        );
        assert_eq!(
            parse_request("quarantine clear hash=99").unwrap(),
            Request::QuarantineClear(Some(99))
        );
        assert!(parse_request("quarantine").is_err());
        assert!(parse_request("quarantine clear hash=x").is_err());
        assert_eq!(
            parse_request("inject device=2").unwrap(),
            Request::Inject { device: 2, count: 1 }
        );
        assert_eq!(
            parse_request("inject device=0 count=3").unwrap(),
            Request::Inject { device: 0, count: 3 }
        );
        assert!(parse_request("inject count=3").is_err());
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(parse_request("status id=7\n").unwrap(), Request::Status(7));
        assert_eq!(parse_request("wait id=1").unwrap(), Request::Wait(1));
        assert_eq!(parse_request("cancel id=2").unwrap(), Request::Cancel(2));
        assert_eq!(parse_request("result id=3").unwrap(), Request::Result(3));
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("drain").unwrap(), Request::Drain);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert!(parse_request("status id=x").is_err());
        assert!(parse_request("explode").is_err());
        assert!(parse_request("submit tenant=a deck=&grid").is_err());
    }

    #[test]
    fn version_tags_parse_case_insensitively() {
        assert_eq!(parse_version("ad2xu").unwrap(), CodeVersion::Ad2xu);
        assert_eq!(parse_version("D2XAd").unwrap(), CodeVersion::D2xad);
        assert!(parse_version("openacc").is_err());
    }

    #[test]
    fn bounded_reader_returns_lines_then_eof() {
        let mut r = io::Cursor::new(b"stats\r\nwait id=3\nlast".to_vec());
        assert_eq!(
            read_request_line(&mut r).unwrap(),
            WireRead::Line("stats".into())
        );
        assert_eq!(
            read_request_line(&mut r).unwrap(),
            WireRead::Line("wait id=3".into())
        );
        // Unterminated trailing line still delivers, then EOF.
        assert_eq!(
            read_request_line(&mut r).unwrap(),
            WireRead::Line("last".into())
        );
        assert_eq!(read_request_line(&mut r).unwrap(), WireRead::Eof);
    }

    #[test]
    fn bounded_reader_caps_oversized_lines() {
        let mut huge = vec![b'a'; MAX_LINE + 10];
        huge.push(b'\n');
        huge.extend_from_slice(b"stats\n");
        let mut r = io::Cursor::new(huge);
        assert_eq!(read_request_line(&mut r).unwrap(), WireRead::TooLong);
        // The stream stays usable for a well-behaved follow-up...
        // (the server chooses to close instead, but the reader itself
        // resynchronises at the newline).
        assert_eq!(
            read_request_line(&mut r).unwrap(),
            WireRead::Line("stats".into())
        );
    }

    #[test]
    fn bounded_reader_rejects_invalid_utf8() {
        let mut r = io::Cursor::new(b"\xff\xfe garbage\nstats\n".to_vec());
        assert_eq!(read_request_line(&mut r).unwrap(), WireRead::BadUtf8);
        assert_eq!(
            read_request_line(&mut r).unwrap(),
            WireRead::Line("stats".into())
        );
    }

    #[test]
    fn status_line_carries_the_counters() {
        let line = encode_status(&JobStatus {
            id: JobId(4),
            tenant: "t".into(),
            state: JobState::Failed,
            steps_done: 3,
            n_steps: 8,
            recovery_events: 2,
            cached: false,
            error: Some("rank 1: boom\nat step 3".into()),
        });
        assert!(line.starts_with("ok id=4 state=failed steps=3/8 recovery=2 cached=false"));
        assert!(line.contains("error=rank 1: boom\\nat step 3"));
        assert!(!line.contains('\n'));
    }
}
