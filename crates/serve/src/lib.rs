#![warn(missing_docs)]
//! # mas-serve — a multi-run job scheduler over the virtual GPU fleet
//!
//! The paper's production context is a shared GPU cluster running many
//! MAS studies at once. This crate is that operational layer for the
//! reproduction: a long-running server that accepts deck submissions
//! from many clients, queues them with priorities and per-tenant
//! quotas, schedules them onto a fixed pool of [`gpusim`] devices, and
//! runs each job under the fault-tolerant supervisor — so checkpointing,
//! rollback and rank-respawn recovery are inherited per job, not
//! reimplemented here.
//!
//! The pieces:
//!
//! * [`job`] — what a submission is ([`JobSpec`]) and its lifecycle
//!   ([`JobState`], [`JobStatus`]);
//! * [`cache`] — the content-addressed result cache: resubmitting an
//!   identical run (same deck content hash, code version, rank layout
//!   and seed) returns the completed report instantly, running zero
//!   steps;
//! * [`server`] — the scheduler itself: queue, worker pool, device
//!   leasing, progress streaming and cooperative cancellation;
//! * [`client`] — the in-process client (what the integration tests
//!   drive end-to-end);
//! * [`wire`] — the line protocol spoken by the `mas_serve` TCP binary.
//!
//! Scheduling policy, quota semantics and the cache key are documented
//! in `DESIGN.md` (§ mas-serve).

pub mod cache;
pub mod client;
pub mod job;
pub mod server;
pub mod wire;

pub use cache::CacheKey;
pub use client::Client;
pub use job::{JobId, JobSpec, JobState, JobStatus};
pub use server::{Server, ServerConfig, ServerStats, SubmitError};
