#![warn(missing_docs)]
//! # mas-serve — a multi-run job scheduler over the virtual GPU fleet
//!
//! The paper's production context is a shared GPU cluster running many
//! MAS studies at once. This crate is that operational layer for the
//! reproduction: a long-running server that accepts deck submissions
//! from many clients, queues them with priorities and per-tenant
//! quotas, schedules them onto a fixed pool of [`gpusim`] devices, and
//! runs each job under the fault-tolerant supervisor — so checkpointing,
//! rollback and rank-respawn recovery are inherited per job, not
//! reimplemented here.
//!
//! The pieces:
//!
//! * [`job`] — what a submission is ([`JobSpec`]) and its lifecycle
//!   ([`JobState`], [`JobStatus`]);
//! * [`cache`] — the content-addressed result cache: resubmitting an
//!   identical run (same deck content hash, code version, rank layout
//!   and seed) returns the completed report instantly, running zero
//!   steps;
//! * [`server`] — the scheduler itself: queue, worker pool, device
//!   leasing, progress streaming and cooperative cancellation;
//! * [`journal`] — the write-ahead journal that makes the server
//!   crash-only: every state transition is a CRC32-framed, fsync'd
//!   record, replayed by [`Server::recover`] after a crash or restart;
//! * [`client`] — the in-process client (what the integration tests
//!   drive end-to-end) and the retrying TCP [`RemoteClient`];
//! * [`wire`] — the line protocol spoken by the `mas_serve` TCP binary,
//!   including the bounded line reader the server's edge uses.
//!
//! Scheduling policy, quota semantics, the cache key and the journal
//! format are documented in `DESIGN.md` (§ mas-serve, § durable
//! serving).

pub mod cache;
pub mod client;
pub mod job;
pub mod journal;
pub mod server;
pub mod wire;

pub use cache::CacheKey;
pub use client::{Client, RemoteClient, RetryPolicy};
pub use job::{JobId, JobSpec, JobState, JobStatus};
pub use server::{RecoverySummary, Server, ServerConfig, ServerStats, SubmitError};
