//! The job model: one deck submission and its lifecycle.

use mas_config::Deck;
use std::fmt;
use stdpar::CodeVersion;

/// Identifier of a submitted job, dense and monotonic per server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One deck submission: the run to perform plus its scheduling metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The input deck (validated at submission — see
    /// [`crate::server::SubmitError::InvalidDeck`]).
    pub deck: Deck,
    /// Code version to execute (one of the paper's six).
    pub version: CodeVersion,
    /// Rank count — the job leases this many pool devices for its
    /// lifetime (one rank per device, the paper's deployment shape).
    pub n_ranks: usize,
    /// RNG seed (part of the run's identity, so part of the cache key).
    pub seed: u64,
    /// Scheduling priority: higher runs earlier among queued jobs;
    /// submission order breaks ties.
    pub priority: i32,
    /// Tenant the submission is accounted to (per-tenant quotas).
    pub tenant: String,
}

impl JobSpec {
    /// A defaulted spec for `deck`: version A, one rank, seed 0,
    /// priority 0, tenant `"default"`.
    pub fn new(deck: Deck) -> Self {
        Self {
            deck,
            version: CodeVersion::A,
            n_ranks: 1,
            seed: 0,
            priority: 0,
            tenant: "default".into(),
        }
    }

    /// Set the code version.
    pub fn version(mut self, v: CodeVersion) -> Self {
        self.version = v;
        self
    }

    /// Set the rank count.
    pub fn ranks(mut self, n: usize) -> Self {
        self.n_ranks = n;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set the priority.
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Set the tenant.
    pub fn tenant(mut self, t: &str) -> Self {
        self.tenant = t.into();
        self
    }
}

/// Lifecycle phase of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for devices.
    Queued,
    /// Executing on leased devices.
    Running,
    /// Completed successfully (result available).
    Done,
    /// Terminated with an error (message available).
    Failed,
    /// Cancelled — before start, or cooperatively mid-run.
    Cancelled,
}

impl JobState {
    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }

    /// Lower-case name (the wire protocol's `state=` value).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Point-in-time snapshot of a job, as returned by status queries. The
/// step counter and recovery count advance live while the job runs —
/// this is the progress stream a polling client sees.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The job.
    pub id: JobId,
    /// Accounted tenant.
    pub tenant: String,
    /// Current phase.
    pub state: JobState,
    /// Steps completed so far (max over ranks; live while running).
    pub steps_done: usize,
    /// The deck's step target.
    pub n_steps: usize,
    /// Recovery events observed so far (rollbacks + restores).
    pub recovery_events: usize,
    /// True when the result was served from the content-addressed cache
    /// (the job ran zero steps and leased zero devices).
    pub cached: bool,
    /// Terminal error message (`Failed` / `Cancelled`).
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_terminality_and_names() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert_eq!(JobState::Running.name(), "running");
        assert_eq!(JobId(3).to_string(), "job-3");
    }

    #[test]
    fn spec_builder_sets_fields() {
        let s = JobSpec::new(Deck::preset_quickstart())
            .version(CodeVersion::Ad)
            .ranks(2)
            .seed(7)
            .priority(5)
            .tenant("helio");
        assert_eq!(s.version, CodeVersion::Ad);
        assert_eq!(s.n_ranks, 2);
        assert_eq!(s.seed, 7);
        assert_eq!(s.priority, 5);
        assert_eq!(s.tenant, "helio");
    }
}
