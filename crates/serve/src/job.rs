//! The job model: one deck submission and its lifecycle.

use mas_config::Deck;
use std::fmt;
use stdpar::CodeVersion;

/// Identifier of a submitted job, dense and monotonic per server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One deck submission: the run to perform plus its scheduling metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The input deck (validated at submission — see
    /// [`crate::server::SubmitError::InvalidDeck`]).
    pub deck: Deck,
    /// Code version to execute (one of the paper's six).
    pub version: CodeVersion,
    /// Rank count — the job leases this many pool devices for its
    /// lifetime (one rank per device, the paper's deployment shape).
    pub n_ranks: usize,
    /// RNG seed (part of the run's identity, so part of the cache key).
    pub seed: u64,
    /// Scheduling priority: higher runs earlier among queued jobs;
    /// submission order breaks ties.
    pub priority: i32,
    /// Tenant the submission is accounted to (per-tenant quotas).
    pub tenant: String,
    /// Wall-clock deadline in milliseconds from submission; 0 = none.
    /// Past the deadline the job is cancelled cooperatively at the next
    /// step boundary (or failed at claim time if it never started).
    pub deadline_ms: u64,
    /// Execution attempts before the scheduler gives up (>= 1). A final
    /// attempt that dies by worker panic quarantines the job's cache key.
    pub max_attempts: u32,
}

impl JobSpec {
    /// A defaulted spec for `deck`: version A, one rank, seed 0,
    /// priority 0, tenant `"default"`. Deadline and attempt budget are
    /// taken from the deck's `&serve` section (0 / 1 by default).
    pub fn new(deck: Deck) -> Self {
        let deadline_ms = deck.serve.deadline_ms;
        let max_attempts = deck.serve.max_attempts.max(1);
        Self {
            deck,
            version: CodeVersion::A,
            n_ranks: 1,
            seed: 0,
            priority: 0,
            tenant: "default".into(),
            deadline_ms,
            max_attempts,
        }
    }

    /// Set the code version.
    pub fn version(mut self, v: CodeVersion) -> Self {
        self.version = v;
        self
    }

    /// Set the rank count.
    pub fn ranks(mut self, n: usize) -> Self {
        self.n_ranks = n;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set the priority.
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Set the tenant.
    pub fn tenant(mut self, t: &str) -> Self {
        self.tenant = t.into();
        self
    }

    /// Set the wall-clock deadline in milliseconds (0 = none). Writes
    /// through to the deck's `&serve` section so the journal's canonical
    /// deck text round-trips the policy across restarts.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self.deck.serve.deadline_ms = ms;
        self
    }

    /// Set the attempt budget (clamped to >= 1). Writes through to the
    /// deck's `&serve` section, like [`JobSpec::deadline_ms`].
    pub fn max_attempts(mut self, n: u32) -> Self {
        let n = n.max(1);
        self.max_attempts = n;
        self.deck.serve.max_attempts = n;
        self
    }
}

/// Lifecycle phase of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for devices.
    Queued,
    /// Executing on leased devices.
    Running,
    /// Completed successfully (result available).
    Done,
    /// Terminated with an error (message available).
    Failed,
    /// Cancelled — before start, or cooperatively mid-run.
    Cancelled,
    /// Quarantined under the crash-loop circuit breaker: every attempt
    /// in the budget died by worker panic, so the job's cache key is
    /// blocked from resubmission until an operator clears it
    /// (`quarantine clear` on the wire).
    Quarantined,
}

impl JobState {
    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::Quarantined
        )
    }

    /// Lower-case name (the wire protocol's `state=` value).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Quarantined => "quarantined",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Point-in-time snapshot of a job, as returned by status queries. The
/// step counter and recovery count advance live while the job runs —
/// this is the progress stream a polling client sees.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The job.
    pub id: JobId,
    /// Accounted tenant.
    pub tenant: String,
    /// Current phase.
    pub state: JobState,
    /// Steps completed so far (max over ranks; live while running).
    pub steps_done: usize,
    /// The deck's step target.
    pub n_steps: usize,
    /// Recovery events observed so far (rollbacks + restores).
    pub recovery_events: usize,
    /// True when the result was served from the content-addressed cache
    /// (the job ran zero steps and leased zero devices).
    pub cached: bool,
    /// Terminal error message (`Failed` / `Cancelled`).
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_terminality_and_names() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Quarantined.is_terminal());
        assert_eq!(JobState::Running.name(), "running");
        assert_eq!(JobState::Quarantined.name(), "quarantined");
        assert_eq!(JobId(3).to_string(), "job-3");
    }

    #[test]
    fn spec_builder_sets_fields() {
        let s = JobSpec::new(Deck::preset_quickstart())
            .version(CodeVersion::Ad)
            .ranks(2)
            .seed(7)
            .priority(5)
            .tenant("helio")
            .deadline_ms(1500)
            .max_attempts(3);
        assert_eq!(s.version, CodeVersion::Ad);
        assert_eq!(s.n_ranks, 2);
        assert_eq!(s.seed, 7);
        assert_eq!(s.priority, 5);
        assert_eq!(s.tenant, "helio");
        assert_eq!(s.deadline_ms, 1500);
        assert_eq!(s.max_attempts, 3);
    }

    #[test]
    fn spec_inherits_deck_serve_section() {
        let mut d = Deck::preset_quickstart();
        d.serve.deadline_ms = 900;
        d.serve.max_attempts = 4;
        let s = JobSpec::new(d);
        assert_eq!(s.deadline_ms, 900);
        assert_eq!(s.max_attempts, 4);
        // max_attempts clamps to >= 1 even if a raw deck said 0.
        let mut d = Deck::preset_quickstart();
        d.serve.max_attempts = 0;
        assert_eq!(JobSpec::new(d).max_attempts, 1);
        assert_eq!(JobSpec::new(Deck::preset_quickstart()).max_attempts(0).max_attempts, 1);
    }
}
