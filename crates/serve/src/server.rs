//! The scheduler: queue, quotas, worker pool, device leasing, progress
//! streaming, cancellation, and the result cache — glued to the
//! fault-tolerant supervisor that actually executes each job.
//!
//! Concurrency shape: one `Mutex<Sched>` guards the queue, the job
//! table and the cache; a single `Condvar` is notified on every event
//! (submission, completion, cancellation, shutdown) and woken by both
//! idle workers and blocked status-waiters. Per-job live counters
//! (step progress, recovery count, the cancel flag) are atomics outside
//! the lock, because every rank thread of a running job updates them on
//! every step — they must not serialise the physics on the scheduler
//! lock.

use crate::cache::{CacheKey, ResultCache};
use crate::job::{JobId, JobSpec, JobState, JobStatus};
use gpusim::{DevicePool, DeviceSpec, PoolStats};
use mas_config::DeckError;
use mas_mhd::{progress_fn, MultiRankReport, ProgressEvent};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Sizing and policy knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Spec of every device in the pool (homogeneous fleet).
    pub device: DeviceSpec,
    /// Pool size. A job needing more ranks than this is rejected at
    /// submission as infeasible.
    pub n_devices: usize,
    /// Worker threads — the maximum number of jobs in flight at once.
    pub n_workers: usize,
    /// Backpressure bound: submissions beyond this many queued jobs are
    /// rejected with [`SubmitError::QueueFull`].
    pub max_queue: usize,
    /// Per-tenant cap on live (queued + running) jobs.
    pub tenant_quota: usize,
}

impl ServerConfig {
    /// A config for `n_devices` slots of `device`, with one worker per
    /// device and moderate queue/quota bounds.
    pub fn new(device: DeviceSpec, n_devices: usize) -> Self {
        Self {
            device,
            n_devices,
            n_workers: n_devices,
            max_queue: 32,
            tenant_quota: 8,
        }
    }
}

/// Why a submission was rejected. Every variant is a *submission-time*
/// answer — once accepted, a job fails through its own status, never by
/// panicking a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (backpressure: retry later).
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The tenant already has `quota` live jobs.
    QuotaExceeded {
        /// The tenant over budget.
        tenant: String,
        /// The configured per-tenant cap.
        quota: usize,
    },
    /// The job can never run on this pool (zero ranks, or more ranks
    /// than the fleet has devices).
    Infeasible {
        /// Devices the job would need.
        needed: usize,
        /// Devices the pool has.
        pool: usize,
    },
    /// The deck failed validation (same structured error the `mas` CLI
    /// reports).
    InvalidDeck(DeckError),
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs queued); retry later")
            }
            SubmitError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant '{tenant}' is at its quota of {quota} live jobs")
            }
            SubmitError::Infeasible { needed, pool } => {
                write!(f, "job needs {needed} device(s) but the pool holds {pool}")
            }
            SubmitError::InvalidDeck(e) => write!(f, "{e}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Live per-job counters, updated from rank threads without the
/// scheduler lock (see the module docs).
#[derive(Default)]
struct JobProgress {
    /// Max step completed over all ranks.
    steps_done: AtomicUsize,
    /// Rollbacks + restores observed.
    recovery_count: AtomicUsize,
    /// Human-readable recovery event log.
    recovery_log: Mutex<Vec<String>>,
    /// Cooperative cancel: the progress sink returns `false` once set.
    cancel: AtomicBool,
}

struct JobRecord {
    spec: JobSpec,
    key: CacheKey,
    state: JobState,
    cached: bool,
    progress: Arc<JobProgress>,
    result: Option<Arc<MultiRankReport>>,
    error: Option<String>,
}

impl JobRecord {
    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            tenant: self.spec.tenant.clone(),
            state: self.state,
            steps_done: self.progress.steps_done.load(Ordering::SeqCst),
            n_steps: self.spec.deck.time.n_steps,
            recovery_events: self.progress.recovery_count.load(Ordering::SeqCst),
            cached: self.cached,
            error: self.error.clone(),
        }
    }
}

struct Sched {
    /// Pending job ids, submission-ordered (selection scans it).
    queue: Vec<u64>,
    jobs: HashMap<u64, JobRecord>,
    cache: ResultCache,
    next_id: u64,
    running: usize,
    shutting_down: bool,
}

/// Aggregate server counters (see [`Server::stats`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Device-pool ledger snapshot.
    pub pool: PoolStats,
    /// Jobs waiting for devices.
    pub queued: usize,
    /// Jobs executing now.
    pub running: usize,
    /// Jobs finished successfully (cache hits included).
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Cache lookups served.
    pub cache_hits: u64,
    /// Cache lookups missed.
    pub cache_misses: u64,
    /// Simulation steps executed across all jobs since boot — the
    /// counter the cache-hit tests pin to zero growth.
    pub total_steps: u64,
}

/// The long-running scheduler. Create with [`Server::start`]; submit
/// through it (or a [`crate::Client`]); stop with
/// [`Server::shutdown`] + [`Server::join`].
pub struct Server {
    cfg: ServerConfig,
    pool: Arc<DevicePool>,
    sched: Mutex<Sched>,
    event: Condvar,
    /// Steps executed server-wide (every rank's every step). Behind an
    /// `Arc` so a job's progress sink can hold it without borrowing the
    /// server.
    total_steps: Arc<AtomicU64>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Boot a server: build the device pool and spawn the worker pool.
    pub fn start(cfg: ServerConfig) -> Arc<Server> {
        assert!(cfg.n_workers > 0, "server needs at least one worker");
        let pool = Arc::new(DevicePool::new(cfg.device.clone(), cfg.n_devices));
        let server = Arc::new(Server {
            cfg,
            pool,
            sched: Mutex::new(Sched {
                queue: Vec::new(),
                jobs: HashMap::new(),
                cache: ResultCache::default(),
                next_id: 1,
                running: 0,
                shutting_down: false,
            }),
            event: Condvar::new(),
            total_steps: Arc::new(AtomicU64::new(0)),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = server.workers.lock().unwrap();
        for i in 0..server.cfg.n_workers {
            let s = server.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        server
    }

    /// The device pool (shared with any embedding scheduler).
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Submit a job. Returns its id, or a structured rejection; a
    /// resubmission of an already-computed run completes instantly from
    /// the cache (status shows `cached`, zero steps execute).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        // Feasibility and deck validity are answered before touching the
        // scheduler at all.
        let pool_size = self.cfg.n_devices;
        if spec.n_ranks == 0 || spec.n_ranks > pool_size {
            return Err(SubmitError::Infeasible {
                needed: spec.n_ranks,
                pool: pool_size,
            });
        }
        spec.deck.validated().map_err(SubmitError::InvalidDeck)?;

        let key = CacheKey::for_spec(&spec);
        let mut sched = self.sched.lock().unwrap();
        if sched.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        let id = sched.next_id;

        // Cache hit: the job is born terminal. It consumes no queue
        // slot, no quota and no devices — serving a cached result is
        // free, so it is exempt from backpressure.
        if let Some(report) = sched.cache.lookup(&key) {
            sched.next_id += 1;
            let rec = JobRecord {
                spec,
                key,
                state: JobState::Done,
                cached: true,
                progress: Arc::new(JobProgress::default()),
                result: Some(report),
                error: None,
            };
            rec.progress
                .steps_done
                .store(rec.spec.deck.time.n_steps, Ordering::SeqCst);
            sched.jobs.insert(id, rec);
            drop(sched);
            self.event.notify_all();
            return Ok(JobId(id));
        }

        let live = sched
            .jobs
            .values()
            .filter(|j| j.spec.tenant == spec.tenant && !j.state.is_terminal())
            .count();
        if live >= self.cfg.tenant_quota {
            return Err(SubmitError::QuotaExceeded {
                tenant: spec.tenant,
                quota: self.cfg.tenant_quota,
            });
        }
        if sched.queue.len() >= self.cfg.max_queue {
            return Err(SubmitError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }

        sched.next_id += 1;
        sched.jobs.insert(
            id,
            JobRecord {
                spec,
                key,
                state: JobState::Queued,
                cached: false,
                progress: Arc::new(JobProgress::default()),
                result: None,
                error: None,
            },
        );
        sched.queue.push(id);
        drop(sched);
        self.event.notify_all();
        Ok(JobId(id))
    }

    /// Status snapshot of a job (`None` for an unknown id).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let sched = self.sched.lock().unwrap();
        sched.jobs.get(&id.0).map(|j| j.status(id))
    }

    /// The recovery event log streamed so far (`None` for unknown id).
    pub fn recovery_log(&self, id: JobId) -> Option<Vec<String>> {
        let sched = self.sched.lock().unwrap();
        sched
            .jobs
            .get(&id.0)
            .map(|j| j.progress.recovery_log.lock().unwrap().clone())
    }

    /// Block until the job reaches a terminal state; returns the final
    /// status (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut sched = self.sched.lock().unwrap();
        loop {
            let status = sched.jobs.get(&id.0)?.status(id);
            if status.state.is_terminal() {
                return Some(status);
            }
            sched = self.event.wait(sched).unwrap();
        }
    }

    /// Fetch a finished job's result: `Ok` with the report for `Done`,
    /// `Err` with the failure message otherwise. `None` while the job is
    /// still queued/running, or for an unknown id.
    #[allow(clippy::type_complexity)]
    pub fn result(&self, id: JobId) -> Option<Result<Arc<MultiRankReport>, String>> {
        let sched = self.sched.lock().unwrap();
        let job = sched.jobs.get(&id.0)?;
        match job.state {
            JobState::Done => Some(Ok(job.result.clone().expect("done job has a result"))),
            JobState::Failed | JobState::Cancelled => Some(Err(job
                .error
                .clone()
                .unwrap_or_else(|| job.state.name().into()))),
            JobState::Queued | JobState::Running => None,
        }
    }

    /// Cancel a job. Queued jobs cancel immediately; running jobs are
    /// asked to stop cooperatively at the next step boundary. Terminal
    /// jobs and unknown ids are an error.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut sched = self.sched.lock().unwrap();
        let Some(job) = sched.jobs.get_mut(&id.0) else {
            return Err(format!("unknown job id {}", id.0));
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled before start".into());
                sched.queue.retain(|&q| q != id.0);
                drop(sched);
                self.event.notify_all();
                Ok(())
            }
            JobState::Running => {
                job.progress.cancel.store(true, Ordering::SeqCst);
                Ok(())
            }
            s => Err(format!("{id} is already {s}")),
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let sched = self.sched.lock().unwrap();
        let mut done = 0;
        let mut failed = 0;
        let mut cancelled = 0;
        for j in sched.jobs.values() {
            match j.state {
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
                _ => {}
            }
        }
        ServerStats {
            pool: self.pool.stats(),
            queued: sched.queue.len(),
            running: sched.running,
            done,
            failed,
            cancelled,
            cache_hits: sched.cache.hits(),
            cache_misses: sched.cache.misses(),
            total_steps: self.total_steps.load(Ordering::SeqCst),
        }
    }

    /// Steps executed server-wide since boot (the cache-hit invariant:
    /// a resubmission leaves this unchanged).
    pub fn total_steps(&self) -> u64 {
        self.total_steps.load(Ordering::SeqCst)
    }

    /// Begin shutdown: reject new submissions, cancel every queued job,
    /// ask running jobs to stop cooperatively, and wake everyone.
    pub fn shutdown(&self) {
        let mut sched = self.sched.lock().unwrap();
        sched.shutting_down = true;
        let queued: Vec<u64> = sched.queue.drain(..).collect();
        for id in queued {
            if let Some(job) = sched.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.error = Some("server shutdown".into());
            }
        }
        for job in sched.jobs.values() {
            if job.state == JobState::Running {
                job.progress.cancel.store(true, Ordering::SeqCst);
            }
        }
        drop(sched);
        self.pool.close();
        self.event.notify_all();
    }

    /// Wait for every worker to exit (call after [`Server::shutdown`]).
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    // -- scheduling internals ------------------------------------------------

    /// Pick the best runnable queued job: among jobs whose rank count
    /// fits the currently free devices, the highest priority wins and
    /// submission order breaks ties. Returns its queue position.
    fn pick(&self, sched: &Sched) -> Option<usize> {
        let free = self.pool.n_free();
        let mut best: Option<(usize, i32, u64)> = None;
        for (pos, &id) in sched.queue.iter().enumerate() {
            let job = &sched.jobs[&id];
            if job.spec.n_ranks > free {
                continue;
            }
            let cand = (pos, job.spec.priority, id);
            best = match best {
                // Higher priority first; earlier submission (smaller id)
                // breaks ties.
                Some((_, p, i)) if (cand.1, std::cmp::Reverse(cand.2)) <= (p, std::cmp::Reverse(i)) => best,
                _ => Some(cand),
            };
        }
        best.map(|(pos, _, _)| pos)
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            // Claim a job and its devices atomically under the scheduler
            // lock: the feasibility check and the lease cannot race
            // another worker.
            let (id, spec, progress, lease) = {
                let mut sched = self.sched.lock().unwrap();
                let (id, lease) = loop {
                    if sched.shutting_down {
                        return;
                    }
                    if let Some(pos) = self.pick(&sched) {
                        let id = sched.queue.remove(pos);
                        let n = sched.jobs[&id].spec.n_ranks;
                        match self.pool.try_lease(n) {
                            Ok(Some(lease)) => break (id, lease),
                            // Raced or closed: requeue and retry. With
                            // leases granted only under this lock the
                            // None arm is unreachable, but requeueing is
                            // the safe answer if that ever changes.
                            Ok(None) => sched.queue.insert(pos, id),
                            Err(_) => return, // pool closed: shutdown
                        }
                    }
                    sched = self.event.wait(sched).unwrap();
                };
                sched.running += 1;
                let job = sched.jobs.get_mut(&id).expect("picked job exists");
                job.state = JobState::Running;
                (id, job.spec.clone(), job.progress.clone(), lease)
            };
            self.event.notify_all(); // status waiters see Running

            let outcome = self.execute(&spec, &progress);

            if let Err(e) = self.pool.release(lease) {
                // A ledger bug must surface in stats/logs, not corrupt
                // the pool silently.
                eprintln!("mas-serve: lease release failed for {}: {e}", JobId(id));
            }

            let mut sched = self.sched.lock().unwrap();
            sched.running -= 1;
            let cancelled = progress.cancel.load(Ordering::SeqCst);
            let job = sched.jobs.get_mut(&id).expect("running job exists");
            match outcome {
                Ok(report) => {
                    let report = Arc::new(report);
                    job.state = JobState::Done;
                    job.result = Some(report.clone());
                    let key = job.key.clone();
                    sched.cache.insert(key, report);
                }
                Err(message) => {
                    job.state = if cancelled {
                        JobState::Cancelled
                    } else {
                        JobState::Failed
                    };
                    job.error = Some(message);
                }
            }
            drop(sched);
            self.event.notify_all();
        }
    }

    /// Run one job under the supervisor, streaming progress into its
    /// live counters. Inherits checkpointing, rollback and rank-respawn
    /// recovery wholesale — this is just the observation plumbing.
    fn execute(&self, spec: &JobSpec, progress: &Arc<JobProgress>) -> Result<MultiRankReport, String> {
        let sink = {
            let progress = progress.clone();
            // The sink must be 'static (it crosses into rank threads),
            // so it holds the counter by Arc, not by borrowing `self`.
            let steps = self.total_steps.clone();
            progress_fn(move |e: &ProgressEvent| {
                match e {
                    ProgressEvent::Step { step, .. } => {
                        progress.steps_done.fetch_max(*step, Ordering::SeqCst);
                        steps.fetch_add(1, Ordering::SeqCst);
                    }
                    ProgressEvent::Rollback { rank, to_step } => {
                        progress.recovery_count.fetch_add(1, Ordering::SeqCst);
                        progress
                            .recovery_log
                            .lock()
                            .unwrap()
                            .push(format!("rank {rank}: rollback to step {to_step}"));
                    }
                    ProgressEvent::Restored { rank, step } => {
                        progress.recovery_count.fetch_add(1, Ordering::SeqCst);
                        progress
                            .recovery_log
                            .lock()
                            .unwrap()
                            .push(format!("rank {rank}: restored at step {step}"));
                    }
                    ProgressEvent::CheckpointCommitted { .. } => {}
                }
                !progress.cancel.load(Ordering::SeqCst)
            })
        };
        mas_mhd::run_supervised_with_progress(
            &spec.deck,
            spec.version,
            self.pool.spec().clone(),
            spec.n_ranks,
            spec.seed,
            false,
            Some(sink),
        )
        .map_err(|e| e.to_string())
    }
}
