//! The scheduler: queue, quotas, worker pool, device leasing, progress
//! streaming, cancellation, and the result cache — glued to the
//! fault-tolerant supervisor that actually executes each job.
//!
//! Concurrency shape: one `Mutex<Sched>` guards the queue, the job
//! table, the cache **and the journal** (so journal write order equals
//! state-transition order by construction); a single `Condvar` is
//! notified on every event (submission, completion, cancellation,
//! drain, shutdown) and woken by both idle workers and blocked
//! status-waiters. Per-job live counters (step progress, recovery
//! count, the cancel flag) are atomics outside the lock, because every
//! rank thread of a running job updates them on every step — they must
//! not serialise the physics on the scheduler lock.
//!
//! Durability: a server booted with [`Server::recover`] appends every
//! state transition to the write-ahead journal *before* releasing the
//! scheduler lock, each record fsync'd — SIGKILL at any instant loses
//! no acknowledged submission and no completed result (see
//! [`crate::journal`]). A server booted with [`Server::start`] runs
//! in-memory only, the pre-journal behaviour.

use crate::cache::{CacheKey, ResultCache};
use crate::job::{JobId, JobSpec, JobState, JobStatus};
use crate::journal::{self, Journal, Record};
use gpusim::{DevicePool, DeviceSpec, PoolStats};
use mas_config::DeckError;
use mas_mhd::{progress_fn, MultiRankReport, ProgressEvent};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and policy knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Spec of every device in the pool (homogeneous fleet).
    pub device: DeviceSpec,
    /// Pool size. A job needing more ranks than this is rejected at
    /// submission as infeasible.
    pub n_devices: usize,
    /// Worker threads — the maximum number of jobs in flight at once.
    pub n_workers: usize,
    /// Backpressure bound: submissions beyond this many queued jobs are
    /// rejected with [`SubmitError::QueueFull`].
    pub max_queue: usize,
    /// Per-tenant cap on live (queued + running) jobs.
    pub tenant_quota: usize,
    /// Result-cache entry bound (LRU eviction beyond it; evictions are
    /// journaled so the persisted cache stays bounded too).
    pub cache_max_entries: usize,
    /// Optional result TTL: entries older than this expire at the next
    /// sweep regardless of use. `None` (the default) never expires.
    pub cache_ttl: Option<Duration>,
    /// Compact the journal after this many appended records (snapshot
    /// of live state replaces the historical tail). Only meaningful for
    /// journaled servers.
    pub compact_every: usize,
}

impl ServerConfig {
    /// A config for `n_devices` slots of `device`, with one worker per
    /// device and moderate queue/quota/cache bounds.
    pub fn new(device: DeviceSpec, n_devices: usize) -> Self {
        Self {
            device,
            n_devices,
            n_workers: n_devices,
            max_queue: 32,
            tenant_quota: 8,
            cache_max_entries: 256,
            cache_ttl: None,
            compact_every: 512,
        }
    }
}

/// Why a submission was rejected. Every variant is a *submission-time*
/// answer — once accepted, a job fails through its own status, never by
/// panicking a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (backpressure: retry later).
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The tenant already has `quota` live jobs.
    QuotaExceeded {
        /// The tenant over budget.
        tenant: String,
        /// The configured per-tenant cap.
        quota: usize,
    },
    /// The job can never run on this pool (zero ranks, or more ranks
    /// than the fleet has devices).
    Infeasible {
        /// Devices the job would need.
        needed: usize,
        /// Devices the pool has.
        pool: usize,
    },
    /// The deck failed validation (same structured error the `mas` CLI
    /// reports).
    InvalidDeck(DeckError),
    /// The server is shutting down or draining.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs queued); retry later")
            }
            SubmitError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant '{tenant}' is at its quota of {quota} live jobs")
            }
            SubmitError::Infeasible { needed, pool } => {
                write!(f, "job needs {needed} device(s) but the pool holds {pool}")
            }
            SubmitError::InvalidDeck(e) => write!(f, "{e}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Live per-job counters, updated from rank threads without the
/// scheduler lock (see the module docs).
#[derive(Default)]
struct JobProgress {
    /// Max step completed over all ranks.
    steps_done: AtomicUsize,
    /// Rollbacks + restores observed.
    recovery_count: AtomicUsize,
    /// Human-readable recovery event log.
    recovery_log: Mutex<Vec<String>>,
    /// Cooperative cancel: the progress sink returns `false` once set.
    cancel: AtomicBool,
}

struct JobRecord {
    spec: JobSpec,
    key: CacheKey,
    state: JobState,
    cached: bool,
    progress: Arc<JobProgress>,
    result: Option<Arc<MultiRankReport>>,
    error: Option<String>,
}

impl JobRecord {
    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            tenant: self.spec.tenant.clone(),
            state: self.state,
            steps_done: self.progress.steps_done.load(Ordering::SeqCst),
            n_steps: self.spec.deck.time.n_steps,
            recovery_events: self.progress.recovery_count.load(Ordering::SeqCst),
            cached: self.cached,
            error: self.error.clone(),
        }
    }
}

struct Sched {
    /// Pending job ids, submission-ordered (selection scans it).
    queue: Vec<u64>,
    jobs: HashMap<u64, JobRecord>,
    cache: ResultCache,
    next_id: u64,
    running: usize,
    shutting_down: bool,
    /// Intake closed; running and queued jobs finish (see
    /// [`Server::drain`]).
    draining: bool,
    /// The write-ahead journal, when durability is on. Living inside
    /// the scheduler lock makes journal order identical to transition
    /// order with no extra synchronisation.
    journal: Option<Journal>,
    /// This boot's epoch stamp (max replayed epoch + 1; 0 in-memory).
    epoch: u64,
}

/// Aggregate server counters (see [`Server::stats`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Device-pool ledger snapshot.
    pub pool: PoolStats,
    /// Jobs waiting for devices.
    pub queued: usize,
    /// Jobs executing now.
    pub running: usize,
    /// Jobs finished successfully (cache hits included).
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Cache lookups served.
    pub cache_hits: u64,
    /// Cache lookups missed.
    pub cache_misses: u64,
    /// Results currently cached.
    pub cache_entries: usize,
    /// Cache entries evicted (capacity bound or TTL) since boot.
    pub cache_evictions: u64,
    /// Simulation steps executed across all jobs since boot — the
    /// counter the cache-hit tests pin to zero growth.
    pub total_steps: u64,
}

/// What [`Server::recover`] found in the journal — printed by the
/// `mas_serve` binary as a single greppable `recovery:` line.
#[derive(Clone, Debug, Default)]
pub struct RecoverySummary {
    /// This boot's epoch (previous max + 1).
    pub epoch: u64,
    /// Valid records replayed.
    pub records: usize,
    /// Interrupted (queued or running at crash) jobs re-enqueued.
    pub requeued: usize,
    /// Jobs restored in `Done` state.
    pub done: usize,
    /// Jobs restored in `Failed` state.
    pub failed: usize,
    /// Jobs restored in `Cancelled` state.
    pub cancelled: usize,
    /// Results rehydrated into the cache.
    pub cache_entries: usize,
    /// Persisted cache entries dropped because they were computed by a
    /// different build (stale physics is never served).
    pub dropped_stale_cache: usize,
    /// Jobs dropped because their deck text no longer parses under this
    /// build's config grammar.
    pub dropped_unparseable: usize,
    /// Torn-tail bytes truncated off the journal.
    pub truncated_bytes: u64,
    /// Why replay stopped early, when it did.
    pub torn: Option<String>,
}

impl fmt::Display for RecoverySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch={} records={} requeued={} done={} failed={} cancelled={} \
             cache={} stale_dropped={} unparseable={} truncated_bytes={}",
            self.epoch,
            self.records,
            self.requeued,
            self.done,
            self.failed,
            self.cancelled,
            self.cache_entries,
            self.dropped_stale_cache,
            self.dropped_unparseable,
            self.truncated_bytes,
        )?;
        if let Some(t) = &self.torn {
            write!(f, " torn=\"{t}\"")?;
        }
        Ok(())
    }
}

/// The long-running scheduler. Create with [`Server::start`] (in-memory)
/// or [`Server::recover`] (journaled, crash-only); submit through it (or
/// a [`crate::Client`]); stop with [`Server::shutdown`] +
/// [`Server::join`], or gracefully with [`Server::drain`].
pub struct Server {
    cfg: ServerConfig,
    pool: Arc<DevicePool>,
    sched: Mutex<Sched>,
    event: Condvar,
    /// Steps executed server-wide (every rank's every step). Behind an
    /// `Arc` so a job's progress sink can hold it without borrowing the
    /// server.
    total_steps: Arc<AtomicU64>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Boot an in-memory server: build the device pool and spawn the
    /// worker pool. Nothing is persisted — a crash loses queue and
    /// cache (use [`Server::recover`] for the crash-only variant).
    pub fn start(cfg: ServerConfig) -> Arc<Server> {
        let cache = ResultCache::new(cfg.cache_max_entries, cfg.cache_ttl);
        Self::spawn(
            cfg,
            Sched {
                queue: Vec::new(),
                jobs: HashMap::new(),
                cache,
                next_id: 1,
                running: 0,
                shutting_down: false,
                draining: false,
                journal: None,
                epoch: 0,
            },
        )
    }

    /// Boot a journaled server over `dir`, replaying any journal found
    /// there first: completed results rehydrate the cache, jobs that
    /// were queued or running when the previous incarnation died are
    /// re-enqueued at their original priority, and a torn journal tail
    /// is truncated, not fatal. Every subsequent state transition is
    /// journaled durably. Idempotent: recovering the same directory
    /// twice in a row reconstructs identical state.
    pub fn recover(
        cfg: ServerConfig,
        dir: impl AsRef<Path>,
    ) -> io::Result<(Arc<Server>, RecoverySummary)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (mut jrn, replayed) = Journal::open(dir.join("journal.log"))?;

        // -- Fold the record stream into final job states + cache -----
        struct RJob {
            rec: Record,
            state: JobState,
            cached: bool,
            message: Option<String>,
        }
        let mut epoch_max = 0u64;
        let mut folded: BTreeMap<u64, RJob> = BTreeMap::new();
        let mut cache = ResultCache::new(cfg.cache_max_entries, cfg.cache_ttl);
        let mut overflow_evicted: Vec<CacheKey> = Vec::new();
        let mut summary = RecoverySummary {
            records: replayed.records.len(),
            truncated_bytes: replayed.truncated_bytes,
            torn: replayed.torn.clone(),
            ..Default::default()
        };
        for (epoch, rec) in &replayed.records {
            epoch_max = epoch_max.max(*epoch);
            match rec {
                Record::Boot => {}
                Record::Submitted { id, .. } => {
                    folded.insert(
                        *id,
                        RJob {
                            rec: rec.clone(),
                            state: JobState::Queued,
                            cached: false,
                            message: None,
                        },
                    );
                }
                Record::Started { id } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Running;
                    }
                }
                Record::Done { id, cached } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Done;
                        j.cached = *cached;
                    }
                }
                Record::Failed { id, message } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Failed;
                        j.message = Some(message.clone());
                    }
                }
                Record::Cancelled { id, message } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Cancelled;
                        j.message = Some(message.clone());
                    }
                }
                Record::CacheInsert {
                    deck_hash,
                    version_tag,
                    code_rev,
                    n_ranks,
                    seed,
                    report,
                } => {
                    // A result computed by another build is stale
                    // physics: drop it rather than serve it.
                    if code_rev != journal::CODE_REV {
                        summary.dropped_stale_cache += 1;
                        continue;
                    }
                    let (Ok(version), Ok(full)) =
                        (crate::wire::parse_version(version_tag), report.to_report())
                    else {
                        summary.dropped_stale_cache += 1;
                        continue;
                    };
                    let key = CacheKey {
                        deck_hash: *deck_hash,
                        version,
                        code_rev: journal::CODE_REV,
                        n_ranks: *n_ranks as usize,
                        seed: *seed,
                    };
                    overflow_evicted.extend(cache.insert(key, Arc::new(full)));
                }
                Record::Evicted {
                    deck_hash,
                    version_tag,
                    n_ranks,
                    seed,
                    ..
                } => {
                    if let Ok(version) = crate::wire::parse_version(version_tag) {
                        // Replaying an eviction the previous incarnation
                        // already performed and counted.
                        cache.remove(&CacheKey {
                            deck_hash: *deck_hash,
                            version,
                            code_rev: journal::CODE_REV,
                            n_ranks: *n_ranks as usize,
                            seed: *seed,
                        });
                    }
                }
            }
        }

        // -- Rebuild the job table and queue --------------------------
        let mut jobs = HashMap::new();
        let mut queue = Vec::new();
        let mut next_id = 1u64;
        for (id, rj) in &folded {
            next_id = next_id.max(id + 1);
            let spec = match journal::spec_of_submitted(&rj.rec) {
                Ok(s) => s,
                Err(_) => {
                    // The deck no longer parses under this build: the
                    // job cannot be reconstructed, so it is dropped (and
                    // counted). Replay stays idempotent — the next boot
                    // reaches the same verdict.
                    summary.dropped_unparseable += 1;
                    continue;
                }
            };
            let key = CacheKey::for_spec(&spec);
            let progress = Arc::new(JobProgress::default());
            let (state, result, error) = match rj.state {
                // Interrupted jobs (queued or mid-run at crash time)
                // re-enter the queue; their original priority lives in
                // the spec, so scheduling order is preserved.
                JobState::Queued | JobState::Running => {
                    queue.push(*id);
                    summary.requeued += 1;
                    (JobState::Queued, None, None)
                }
                JobState::Done => {
                    summary.done += 1;
                    progress
                        .steps_done
                        .store(spec.deck.time.n_steps, Ordering::SeqCst);
                    // The result comes back from the rehydrated cache;
                    // if it was evicted before the crash the job stays
                    // Done but its report is gone (result() reports
                    // that, structurally).
                    (JobState::Done, cache.peek(&key), None)
                }
                JobState::Failed => {
                    summary.failed += 1;
                    (
                        JobState::Failed,
                        None,
                        Some(rj.message.clone().unwrap_or_else(|| "failed".into())),
                    )
                }
                JobState::Cancelled => {
                    summary.cancelled += 1;
                    (
                        JobState::Cancelled,
                        None,
                        Some(rj.message.clone().unwrap_or_else(|| "cancelled".into())),
                    )
                }
            };
            jobs.insert(
                *id,
                JobRecord {
                    cached: rj.cached,
                    spec,
                    key,
                    state,
                    progress,
                    result,
                    error,
                },
            );
        }
        summary.cache_entries = cache.len();
        summary.epoch = epoch_max + 1;

        // -- Stamp the new epoch and journal recovery-time evictions --
        if let Err(e) = jrn.append(summary.epoch, &Record::Boot) {
            return Err(io::Error::new(
                e.kind(),
                format!("journal boot record: {e}"),
            ));
        }
        for k in &overflow_evicted {
            let _ = jrn.append(summary.epoch, &Record::evicted(k));
        }

        let epoch = summary.epoch;
        let server = Self::spawn(
            cfg,
            Sched {
                queue,
                jobs,
                cache,
                next_id,
                running: 0,
                shutting_down: false,
                draining: false,
                journal: Some(jrn),
                epoch,
            },
        );

        // Lease-ledger invariant: the pool is a fresh incarnation, so
        // every lease the dead server held is gone — nothing may be
        // busy, and grant/release counters must balance at zero. The
        // re-enqueued jobs will take *new* leases; a stale lease from
        // the previous incarnation can never be released into this pool
        // (gpusim rejects cross-incarnation releases).
        let ps = server.pool.stats();
        assert_eq!(
            (ps.busy, ps.leases_granted - ps.leases_released),
            (0, 0),
            "recovered pool must start with a balanced, empty lease ledger"
        );

        Ok((server, summary))
    }

    fn spawn(cfg: ServerConfig, sched: Sched) -> Arc<Server> {
        assert!(cfg.n_workers > 0, "server needs at least one worker");
        let pool = Arc::new(DevicePool::new(cfg.device.clone(), cfg.n_devices));
        let server = Arc::new(Server {
            cfg,
            pool,
            sched: Mutex::new(sched),
            event: Condvar::new(),
            total_steps: Arc::new(AtomicU64::new(0)),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = server.workers.lock().unwrap();
        for i in 0..server.cfg.n_workers {
            let s = server.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        server
    }

    /// The device pool (shared with any embedding scheduler).
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Append a record to the journal, if there is one. An append
    /// failure is logged and survived: a full disk degrades durability,
    /// it does not take the service down.
    fn jappend(sched: &mut Sched, rec: &Record) {
        let epoch = sched.epoch;
        if let Some(j) = sched.journal.as_mut() {
            if let Err(e) = j.append(epoch, rec) {
                eprintln!("mas-serve: journal append failed: {e}");
            }
        }
    }

    /// Compact the journal into a snapshot of live state once enough
    /// records have accumulated since the last compaction.
    fn maybe_compact(&self, sched: &mut Sched) {
        let due = sched
            .journal
            .as_ref()
            .is_some_and(|j| j.appended_since_compaction() >= self.cfg.compact_every);
        if !due {
            return;
        }
        let recs = Self::snapshot_records(sched);
        let epoch = sched.epoch;
        if let Some(j) = sched.journal.as_mut() {
            if let Err(e) = j.compact(epoch, &recs) {
                eprintln!("mas-serve: journal compaction failed: {e}");
            }
        }
    }

    /// Serialise live state as a record stream — a compacted journal is
    /// just a journal whose history happens to be minimal.
    fn snapshot_records(sched: &Sched) -> Vec<Record> {
        let mut recs = vec![Record::Boot];
        for (key, report) in sched.cache.entries() {
            recs.push(Record::cache_insert(key, report));
        }
        let mut ids: Vec<u64> = sched.jobs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let job = &sched.jobs[&id];
            recs.push(Record::submitted(id, &job.spec));
            match job.state {
                JobState::Queued => {}
                // Replayed as interrupted → re-enqueued, which is
                // exactly right for a job running at snapshot time.
                JobState::Running => recs.push(Record::Started { id }),
                JobState::Done => recs.push(Record::Done {
                    id,
                    cached: job.cached,
                }),
                JobState::Failed => recs.push(Record::Failed {
                    id,
                    message: job.error.clone().unwrap_or_default(),
                }),
                JobState::Cancelled => recs.push(Record::Cancelled {
                    id,
                    message: job.error.clone().unwrap_or_default(),
                }),
            }
        }
        recs
    }

    /// Submit a job. Returns its id, or a structured rejection; a
    /// resubmission of an already-computed run completes instantly from
    /// the cache (status shows `cached`, zero steps execute).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        // Feasibility and deck validity are answered before touching the
        // scheduler at all.
        let pool_size = self.cfg.n_devices;
        if spec.n_ranks == 0 || spec.n_ranks > pool_size {
            return Err(SubmitError::Infeasible {
                needed: spec.n_ranks,
                pool: pool_size,
            });
        }
        spec.deck.validated().map_err(SubmitError::InvalidDeck)?;

        let key = CacheKey::for_spec(&spec);
        let mut sched = self.sched.lock().unwrap();
        if sched.shutting_down || sched.draining {
            return Err(SubmitError::ShuttingDown);
        }
        // Expire TTL-stale results before consulting the cache, so an
        // expired entry reads as a miss (and its eviction is journaled).
        let expired = sched.cache.sweep(Instant::now());
        for k in &expired {
            Self::jappend(&mut sched, &Record::evicted(k));
        }
        let id = sched.next_id;

        // Cache hit: the job is born terminal. It consumes no queue
        // slot, no quota and no devices — serving a cached result is
        // free, so it is exempt from backpressure.
        if let Some(report) = sched.cache.lookup(&key) {
            sched.next_id += 1;
            Self::jappend(&mut sched, &Record::submitted(id, &spec));
            Self::jappend(&mut sched, &Record::Done { id, cached: true });
            let rec = JobRecord {
                spec,
                key,
                state: JobState::Done,
                cached: true,
                progress: Arc::new(JobProgress::default()),
                result: Some(report),
                error: None,
            };
            rec.progress
                .steps_done
                .store(rec.spec.deck.time.n_steps, Ordering::SeqCst);
            sched.jobs.insert(id, rec);
            self.maybe_compact(&mut sched);
            drop(sched);
            self.event.notify_all();
            return Ok(JobId(id));
        }

        let live = sched
            .jobs
            .values()
            .filter(|j| j.spec.tenant == spec.tenant && !j.state.is_terminal())
            .count();
        if live >= self.cfg.tenant_quota {
            return Err(SubmitError::QuotaExceeded {
                tenant: spec.tenant,
                quota: self.cfg.tenant_quota,
            });
        }
        if sched.queue.len() >= self.cfg.max_queue {
            return Err(SubmitError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }

        sched.next_id += 1;
        // Journal before acknowledging: once `Ok(id)` is returned the
        // submission must survive SIGKILL.
        Self::jappend(&mut sched, &Record::submitted(id, &spec));
        sched.jobs.insert(
            id,
            JobRecord {
                spec,
                key,
                state: JobState::Queued,
                cached: false,
                progress: Arc::new(JobProgress::default()),
                result: None,
                error: None,
            },
        );
        sched.queue.push(id);
        self.maybe_compact(&mut sched);
        drop(sched);
        self.event.notify_all();
        Ok(JobId(id))
    }

    /// Status snapshot of a job (`None` for an unknown id).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let sched = self.sched.lock().unwrap();
        sched.jobs.get(&id.0).map(|j| j.status(id))
    }

    /// The recovery event log streamed so far (`None` for unknown id).
    pub fn recovery_log(&self, id: JobId) -> Option<Vec<String>> {
        let sched = self.sched.lock().unwrap();
        sched
            .jobs
            .get(&id.0)
            .map(|j| j.progress.recovery_log.lock().unwrap().clone())
    }

    /// Block until the job reaches a terminal state; returns the final
    /// status (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut sched = self.sched.lock().unwrap();
        loop {
            let status = sched.jobs.get(&id.0)?.status(id);
            if status.state.is_terminal() {
                return Some(status);
            }
            sched = self.event.wait(sched).unwrap();
        }
    }

    /// Fetch a finished job's result: `Ok` with the report for `Done`,
    /// `Err` with the failure message otherwise. `None` while the job is
    /// still queued/running, or for an unknown id. A job restored as
    /// `Done` whose result had been evicted from the cache before the
    /// restart answers `Err` here — the completion survived, the report
    /// did not, and the caller can resubmit (which recomputes).
    #[allow(clippy::type_complexity)]
    pub fn result(&self, id: JobId) -> Option<Result<Arc<MultiRankReport>, String>> {
        let sched = self.sched.lock().unwrap();
        let job = sched.jobs.get(&id.0)?;
        match job.state {
            JobState::Done => Some(match &job.result {
                Some(r) => Ok(r.clone()),
                None => Err(format!(
                    "{} completed, but its result was evicted from the cache \
                     before the last restart; resubmit to recompute",
                    JobId(id.0)
                )),
            }),
            JobState::Failed | JobState::Cancelled => Some(Err(job
                .error
                .clone()
                .unwrap_or_else(|| job.state.name().into()))),
            JobState::Queued | JobState::Running => None,
        }
    }

    /// Cancel a job. Queued jobs cancel immediately; running jobs are
    /// asked to stop cooperatively at the next step boundary. Terminal
    /// jobs and unknown ids are an error.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut sched = self.sched.lock().unwrap();
        let Some(job) = sched.jobs.get_mut(&id.0) else {
            return Err(format!("unknown job id {}", id.0));
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled before start".into());
                sched.queue.retain(|&q| q != id.0);
                Self::jappend(
                    &mut sched,
                    &Record::Cancelled {
                        id: id.0,
                        message: "cancelled before start".into(),
                    },
                );
                drop(sched);
                self.event.notify_all();
                Ok(())
            }
            JobState::Running => {
                job.progress.cancel.store(true, Ordering::SeqCst);
                Ok(())
            }
            s => Err(format!("{id} is already {s}")),
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let sched = self.sched.lock().unwrap();
        let mut done = 0;
        let mut failed = 0;
        let mut cancelled = 0;
        for j in sched.jobs.values() {
            match j.state {
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
                _ => {}
            }
        }
        ServerStats {
            pool: self.pool.stats(),
            queued: sched.queue.len(),
            running: sched.running,
            done,
            failed,
            cancelled,
            cache_hits: sched.cache.hits(),
            cache_misses: sched.cache.misses(),
            cache_entries: sched.cache.len(),
            cache_evictions: sched.cache.evictions(),
            total_steps: self.total_steps.load(Ordering::SeqCst),
        }
    }

    /// Steps executed server-wide since boot (the cache-hit invariant:
    /// a resubmission leaves this unchanged).
    pub fn total_steps(&self) -> u64 {
        self.total_steps.load(Ordering::SeqCst)
    }

    /// Graceful wind-down: close intake (submissions answer
    /// [`SubmitError::ShuttingDown`]), let every queued and running job
    /// finish and journal its terminal state, then shut down. Blocks
    /// until the queue is empty and nothing is running; call
    /// [`Server::join`] afterwards. The complement of the crash path:
    /// drain loses nothing *without* needing recovery.
    pub fn drain(&self) {
        let mut sched = self.sched.lock().unwrap();
        sched.draining = true;
        drop(sched);
        self.event.notify_all();
        let mut sched = self.sched.lock().unwrap();
        while !(sched.queue.is_empty() && sched.running == 0) {
            sched = self.event.wait(sched).unwrap();
        }
        drop(sched);
        self.shutdown();
    }

    /// Begin shutdown: reject new submissions, cancel every queued job,
    /// ask running jobs to stop cooperatively, and wake everyone.
    pub fn shutdown(&self) {
        let mut sched = self.sched.lock().unwrap();
        sched.shutting_down = true;
        let queued: Vec<u64> = sched.queue.drain(..).collect();
        for id in queued {
            if let Some(job) = sched.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.error = Some("server shutdown".into());
            }
            Self::jappend(
                &mut sched,
                &Record::Cancelled {
                    id,
                    message: "server shutdown".into(),
                },
            );
        }
        for job in sched.jobs.values() {
            if job.state == JobState::Running {
                job.progress.cancel.store(true, Ordering::SeqCst);
            }
        }
        drop(sched);
        self.pool.close();
        self.event.notify_all();
    }

    /// Wait for every worker to exit (call after [`Server::shutdown`]).
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    // -- scheduling internals ------------------------------------------------

    /// Pick the best runnable queued job: among jobs whose rank count
    /// fits the currently free devices, the highest priority wins and
    /// submission order breaks ties. Returns its queue position.
    fn pick(&self, sched: &Sched) -> Option<usize> {
        let free = self.pool.n_free();
        let mut best: Option<(usize, i32, u64)> = None;
        for (pos, &id) in sched.queue.iter().enumerate() {
            let job = &sched.jobs[&id];
            if job.spec.n_ranks > free {
                continue;
            }
            let cand = (pos, job.spec.priority, id);
            best = match best {
                // Higher priority first; earlier submission (smaller id)
                // breaks ties.
                Some((_, p, i)) if (cand.1, std::cmp::Reverse(cand.2)) <= (p, std::cmp::Reverse(i)) => best,
                _ => Some(cand),
            };
        }
        best.map(|(pos, _, _)| pos)
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            // Claim a job and its devices atomically under the scheduler
            // lock: the feasibility check and the lease cannot race
            // another worker.
            let (id, spec, progress, lease) = {
                let mut sched = self.sched.lock().unwrap();
                let (id, lease) = loop {
                    if sched.shutting_down {
                        return;
                    }
                    if let Some(pos) = self.pick(&sched) {
                        let id = sched.queue[pos];
                        let key = sched.jobs[&id].key.clone();
                        // Claim-time cache collapse: a queued job whose
                        // result already exists (typically a recovered
                        // duplicate of a job that completed in a prior
                        // epoch) finishes here — zero steps, zero
                        // leases. `claim_hit` counts the hit but never a
                        // miss, so ordinary runs don't distort counters.
                        if let Some(report) = sched.cache.claim_hit(&key) {
                            sched.queue.remove(pos);
                            let n_steps = {
                                let job =
                                    sched.jobs.get_mut(&id).expect("picked job exists");
                                job.state = JobState::Done;
                                job.cached = true;
                                job.result = Some(report);
                                job.spec.deck.time.n_steps
                            };
                            sched.jobs[&id]
                                .progress
                                .steps_done
                                .store(n_steps, Ordering::SeqCst);
                            Self::jappend(&mut sched, &Record::Done { id, cached: true });
                            self.event.notify_all();
                            continue;
                        }
                        let n = sched.jobs[&id].spec.n_ranks;
                        match self.pool.try_lease(n) {
                            Ok(Some(lease)) => {
                                sched.queue.remove(pos);
                                break (id, lease);
                            }
                            // Raced or closed: leave it queued and
                            // retry. With leases granted only under this
                            // lock the None arm is unreachable, but
                            // waiting is the safe answer if that ever
                            // changes.
                            Ok(None) => {}
                            Err(_) => return, // pool closed: shutdown
                        }
                    }
                    sched = self.event.wait(sched).unwrap();
                };
                sched.running += 1;
                let (spec, progress) = {
                    let job = sched.jobs.get_mut(&id).expect("picked job exists");
                    job.state = JobState::Running;
                    (job.spec.clone(), job.progress.clone())
                };
                Self::jappend(&mut sched, &Record::Started { id });
                (id, spec, progress, lease)
            };
            self.event.notify_all(); // status waiters see Running

            let outcome = self.execute(&spec, &progress);

            if let Err(e) = self.pool.release(lease) {
                // A ledger bug must surface in stats/logs, not corrupt
                // the pool silently.
                eprintln!("mas-serve: lease release failed for {}: {e}", JobId(id));
            }

            let mut sched = self.sched.lock().unwrap();
            sched.running -= 1;
            let cancelled = progress.cancel.load(Ordering::SeqCst);
            match outcome {
                Ok(report) => {
                    let report = Arc::new(report);
                    let key = {
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Done;
                        job.result = Some(report.clone());
                        job.key.clone()
                    };
                    // Write order matters: the result must be durable
                    // before the Done that references it, so a replay
                    // never sees a completed job with no result through
                    // any crash point.
                    Self::jappend(&mut sched, &Record::cache_insert(&key, &report));
                    let evicted = sched.cache.insert(key, report);
                    for k in &evicted {
                        Self::jappend(&mut sched, &Record::evicted(k));
                    }
                    Self::jappend(&mut sched, &Record::Done { id, cached: false });
                }
                Err(message) => {
                    let state = if cancelled {
                        JobState::Cancelled
                    } else {
                        JobState::Failed
                    };
                    {
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = state;
                        job.error = Some(message.clone());
                    }
                    let rec = if cancelled {
                        Record::Cancelled { id, message }
                    } else {
                        Record::Failed { id, message }
                    };
                    Self::jappend(&mut sched, &rec);
                }
            }
            self.maybe_compact(&mut sched);
            drop(sched);
            self.event.notify_all();
        }
    }

    /// Run one job under the supervisor, streaming progress into its
    /// live counters. Inherits checkpointing, rollback and rank-respawn
    /// recovery wholesale — this is just the observation plumbing.
    fn execute(&self, spec: &JobSpec, progress: &Arc<JobProgress>) -> Result<MultiRankReport, String> {
        let sink = {
            let progress = progress.clone();
            // The sink must be 'static (it crosses into rank threads),
            // so it holds the counter by Arc, not by borrowing `self`.
            let steps = self.total_steps.clone();
            progress_fn(move |e: &ProgressEvent| {
                match e {
                    ProgressEvent::Step { step, .. } => {
                        progress.steps_done.fetch_max(*step, Ordering::SeqCst);
                        steps.fetch_add(1, Ordering::SeqCst);
                    }
                    ProgressEvent::Rollback { rank, to_step } => {
                        progress.recovery_count.fetch_add(1, Ordering::SeqCst);
                        progress
                            .recovery_log
                            .lock()
                            .unwrap()
                            .push(format!("rank {rank}: rollback to step {to_step}"));
                    }
                    ProgressEvent::Restored { rank, step } => {
                        progress.recovery_count.fetch_add(1, Ordering::SeqCst);
                        progress
                            .recovery_log
                            .lock()
                            .unwrap()
                            .push(format!("rank {rank}: restored at step {step}"));
                    }
                    ProgressEvent::CheckpointCommitted { .. } => {}
                }
                !progress.cancel.load(Ordering::SeqCst)
            })
        };
        mas_mhd::run_supervised_with_progress(
            &spec.deck,
            spec.version,
            self.pool.spec().clone(),
            spec.n_ranks,
            spec.seed,
            false,
            Some(sink),
        )
        .map_err(|e| e.to_string())
    }
}
