//! The scheduler: queue, quotas, worker pool, device leasing, progress
//! streaming, cancellation, and the result cache — glued to the
//! fault-tolerant supervisor that actually executes each job.
//!
//! Concurrency shape: one `Mutex<Sched>` guards the queue, the job
//! table, the cache **and the journal** (so journal write order equals
//! state-transition order by construction); a single `Condvar` is
//! notified on every event (submission, completion, cancellation,
//! drain, shutdown) and woken by both idle workers and blocked
//! status-waiters. Per-job live counters (step progress, recovery
//! count, the cancel flag) are atomics outside the lock, because every
//! rank thread of a running job updates them on every step — they must
//! not serialise the physics on the scheduler lock.
//!
//! Durability: a server booted with [`Server::recover`] appends every
//! state transition to the write-ahead journal *before* releasing the
//! scheduler lock, each record fsync'd — SIGKILL at any instant loses
//! no acknowledged submission and no completed result (see
//! [`crate::journal`]). A server booted with [`Server::start`] runs
//! in-memory only, the pre-journal behaviour.

use crate::cache::{CacheKey, ResultCache};
use crate::job::{JobId, JobSpec, JobState, JobStatus};
use crate::journal::{self, Journal, Record};
use gpusim::{DeviceHealth, DevicePool, DeviceSpec, PoolStats};
use mas_config::DeckError;
use mas_mhd::{progress_fn, MultiRankReport, ProgressEvent};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the guard if a panicking thread poisoned
/// it. Scheduler state is transitioned only in complete units (journal
/// append + in-memory mutation happen before anything that can panic),
/// so the data under a poisoned lock is consistent — recovering it
/// contains the panic to the job that caused it instead of cascading
/// `PoisonError` panics through every worker and the accept loop (the
/// poisoned-mutex death spiral).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Render a `catch_unwind` payload as the failure message a panicking
/// job reports (panics almost always carry a `&str` or `String`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".into()
    }
}

/// Sizing and policy knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Spec of every device in the pool (homogeneous fleet).
    pub device: DeviceSpec,
    /// Pool size. A job needing more ranks than this is rejected at
    /// submission as infeasible.
    pub n_devices: usize,
    /// Worker threads — the maximum number of jobs in flight at once.
    pub n_workers: usize,
    /// Backpressure bound: submissions beyond this many queued jobs are
    /// rejected with [`SubmitError::QueueFull`].
    pub max_queue: usize,
    /// Per-tenant cap on live (queued + running) jobs.
    pub tenant_quota: usize,
    /// Result-cache entry bound (LRU eviction beyond it; evictions are
    /// journaled so the persisted cache stays bounded too).
    pub cache_max_entries: usize,
    /// Optional result TTL: entries older than this expire at the next
    /// sweep regardless of use. `None` (the default) never expires.
    pub cache_ttl: Option<Duration>,
    /// Compact the journal after this many appended records (snapshot
    /// of live state replaces the historical tail). Only meaningful for
    /// journaled servers.
    pub compact_every: usize,
    /// Load-shedding watermark on queue depth: while more than this many
    /// jobs are queued, the lowest-priority queued work is shed (or the
    /// newcomer rejected with a retry-after hint). 0 disables.
    pub shed_queue_depth: usize,
    /// Load-shedding watermark on the oldest queued job's age in
    /// milliseconds. 0 disables.
    pub shed_oldest_ms: u64,
    /// The retry-after hint (milliseconds) carried by overload
    /// rejections and shed notices.
    pub retry_after_ms: u64,
    /// How often the canary thread probes suspect devices. Each probe
    /// leases the suspect slot by name, runs a one-step micro-deck
    /// through the supervisor, and reinstates the device on success.
    /// `Duration::ZERO` disables probing.
    pub canary_every: Duration,
}

impl ServerConfig {
    /// A config for `n_devices` slots of `device`, with one worker per
    /// device and moderate queue/quota/cache bounds.
    pub fn new(device: DeviceSpec, n_devices: usize) -> Self {
        Self {
            device,
            n_devices,
            n_workers: n_devices,
            max_queue: 32,
            tenant_quota: 8,
            cache_max_entries: 256,
            cache_ttl: None,
            compact_every: 512,
            shed_queue_depth: 0,
            shed_oldest_ms: 0,
            retry_after_ms: 500,
            canary_every: Duration::from_millis(100),
        }
    }
}

/// Why a submission was rejected. Every variant is a *submission-time*
/// answer — once accepted, a job fails through its own status, never by
/// panicking a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (backpressure: retry later).
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The tenant already has `quota` live jobs.
    QuotaExceeded {
        /// The tenant over budget.
        tenant: String,
        /// The configured per-tenant cap.
        quota: usize,
    },
    /// The job cannot run on this pool right now: zero ranks, more ranks
    /// than the fleet has devices — or more than are currently *healthy*
    /// (suspect devices are out of rotation until a canary probe passes,
    /// so `healthy < pool` names the degraded capacity).
    Infeasible {
        /// Devices the job would need.
        needed: usize,
        /// Devices the pool has.
        pool: usize,
        /// Devices currently in the lease rotation.
        healthy: usize,
    },
    /// The deck failed validation (same structured error the `mas` CLI
    /// reports).
    InvalidDeck(DeckError),
    /// The server is shedding load (queue depth or queue age over its
    /// watermark) and this submission lost the priority comparison.
    Overloaded {
        /// Client-honored hint: retry no sooner than this many ms.
        retry_after_ms: u64,
    },
    /// This exact run (deck + version + ranks + seed) is quarantined
    /// under the crash-loop circuit breaker: every attempt in its budget
    /// died by worker panic. Resubmissions are rejected until an
    /// operator clears the key (`quarantine clear` on the wire).
    Quarantined {
        /// The final attempt's failure message.
        message: String,
    },
    /// The server is shutting down or draining.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs queued); retry later")
            }
            SubmitError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant '{tenant}' is at its quota of {quota} live jobs")
            }
            SubmitError::Infeasible {
                needed,
                pool,
                healthy,
            } => {
                if healthy < pool {
                    write!(
                        f,
                        "job needs {needed} device(s) but only {healthy} of the pool's \
                         {pool} are healthy"
                    )
                } else {
                    write!(f, "job needs {needed} device(s) but the pool holds {pool}")
                }
            }
            SubmitError::InvalidDeck(e) => write!(f, "{e}"),
            SubmitError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            SubmitError::Quarantined { message } => {
                write!(f, "run is quarantined after repeated worker crashes: {message}")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Live per-job counters, updated from rank threads without the
/// scheduler lock (see the module docs).
#[derive(Default)]
struct JobProgress {
    /// Max step completed over all ranks.
    steps_done: AtomicUsize,
    /// Rollbacks + restores observed.
    recovery_count: AtomicUsize,
    /// Human-readable recovery event log.
    recovery_log: Mutex<Vec<String>>,
    /// Cooperative cancel: the progress sink returns `false` once set.
    cancel: AtomicBool,
    /// The deadline fired mid-run: the sink stops the job at the next
    /// step boundary, and the outcome is classified `Failed` (deadline
    /// exceeded), not `Cancelled` — distinct from a user cancel.
    deadline_hit: AtomicBool,
}

impl JobProgress {
    fn log(&self, line: String) {
        relock(&self.recovery_log).push(line);
    }
}

struct JobRecord {
    spec: JobSpec,
    key: CacheKey,
    state: JobState,
    cached: bool,
    progress: Arc<JobProgress>,
    result: Option<Arc<MultiRankReport>>,
    error: Option<String>,
    /// When the job was accepted — deadlines are measured from here.
    /// Reset to boot time for jobs re-enqueued by recovery (the clock
    /// that anchored the original deadline died with the old process).
    submitted_at: Instant,
    /// Execution attempts started so far (claims, not completions).
    attempts: u32,
}

impl JobRecord {
    /// The instant this job's deadline expires, if it has one.
    fn deadline(&self) -> Option<Instant> {
        (self.spec.deadline_ms > 0)
            .then(|| self.submitted_at + Duration::from_millis(self.spec.deadline_ms))
    }
}

impl JobRecord {
    fn status(&self, id: JobId) -> JobStatus {
        JobStatus {
            id,
            tenant: self.spec.tenant.clone(),
            state: self.state,
            steps_done: self.progress.steps_done.load(Ordering::SeqCst),
            n_steps: self.spec.deck.time.n_steps,
            recovery_events: self.progress.recovery_count.load(Ordering::SeqCst),
            cached: self.cached,
            error: self.error.clone(),
        }
    }
}

struct Sched {
    /// Pending job ids, submission-ordered (selection scans it).
    queue: Vec<u64>,
    jobs: HashMap<u64, JobRecord>,
    cache: ResultCache,
    next_id: u64,
    running: usize,
    shutting_down: bool,
    /// Intake closed; running and queued jobs finish (see
    /// [`Server::drain`]).
    draining: bool,
    /// The write-ahead journal, when durability is on. Living inside
    /// the scheduler lock makes journal order identical to transition
    /// order with no extra synchronisation.
    journal: Option<Journal>,
    /// This boot's epoch stamp (max replayed epoch + 1; 0 in-memory).
    epoch: u64,
    /// Crash-loop circuit breaker: cache keys whose jobs panicked out
    /// their whole attempt budget, with the final failure message.
    /// Submissions matching a key here are rejected until cleared.
    quarantine: HashMap<CacheKey, String>,
    /// Queued jobs shed under overload since boot.
    shed_total: u64,
    /// Jobs failed by their deadline since boot.
    deadline_exceeded: u64,
    /// Worker-body panics contained by `catch_unwind` since boot.
    worker_panics: u64,
}

/// Aggregate server counters (see [`Server::stats`]).
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Device-pool ledger snapshot.
    pub pool: PoolStats,
    /// Jobs waiting for devices.
    pub queued: usize,
    /// Jobs executing now.
    pub running: usize,
    /// Jobs finished successfully (cache hits included).
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Jobs parked under the crash-loop circuit breaker.
    pub quarantined: usize,
    /// Cache lookups served.
    pub cache_hits: u64,
    /// Cache lookups missed.
    pub cache_misses: u64,
    /// Results currently cached.
    pub cache_entries: usize,
    /// Cache entries evicted (capacity bound or TTL) since boot.
    pub cache_evictions: u64,
    /// Simulation steps executed across all jobs since boot — the
    /// counter the cache-hit tests pin to zero growth.
    pub total_steps: u64,
    /// Age of the oldest queued job, milliseconds (0 when idle) — one of
    /// the two shedding watermarks, surfaced so operators see pressure
    /// building before the shed fires.
    pub oldest_queued_ms: u64,
    /// Queued-job count per tenant, tenant-sorted.
    pub tenants_queued: Vec<(String, usize)>,
    /// Queued jobs shed under overload since boot.
    pub shed_total: u64,
    /// Jobs failed by their deadline since boot.
    pub deadline_exceeded: u64,
    /// Worker-body panics contained since boot.
    pub worker_panics: u64,
    /// Cache keys currently quarantined.
    pub quarantine_keys: usize,
    /// Per-device health, id order.
    pub devices: Vec<DeviceHealth>,
}

/// What [`Server::recover`] found in the journal — printed by the
/// `mas_serve` binary as a single greppable `recovery:` line.
#[derive(Clone, Debug, Default)]
pub struct RecoverySummary {
    /// This boot's epoch (previous max + 1).
    pub epoch: u64,
    /// Valid records replayed.
    pub records: usize,
    /// Interrupted (queued or running at crash) jobs re-enqueued.
    pub requeued: usize,
    /// Jobs restored in `Done` state.
    pub done: usize,
    /// Jobs restored in `Failed` state.
    pub failed: usize,
    /// Jobs restored in `Cancelled` state.
    pub cancelled: usize,
    /// Jobs restored in `Quarantined` state.
    pub quarantined: usize,
    /// Quarantined cache keys active after replay (quarantines minus
    /// reinstatements, this build only).
    pub quarantine_keys: usize,
    /// Results rehydrated into the cache.
    pub cache_entries: usize,
    /// Persisted cache entries dropped because they were computed by a
    /// different build (stale physics is never served).
    pub dropped_stale_cache: usize,
    /// Jobs dropped because their deck text no longer parses under this
    /// build's config grammar.
    pub dropped_unparseable: usize,
    /// Torn-tail bytes truncated off the journal.
    pub truncated_bytes: u64,
    /// Why replay stopped early, when it did.
    pub torn: Option<String>,
}

impl fmt::Display for RecoverySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch={} records={} requeued={} done={} failed={} cancelled={} \
             quarantined={} quarantine_keys={} \
             cache={} stale_dropped={} unparseable={} truncated_bytes={}",
            self.epoch,
            self.records,
            self.requeued,
            self.done,
            self.failed,
            self.cancelled,
            self.quarantined,
            self.quarantine_keys,
            self.cache_entries,
            self.dropped_stale_cache,
            self.dropped_unparseable,
            self.truncated_bytes,
        )?;
        if let Some(t) = &self.torn {
            write!(f, " torn=\"{t}\"")?;
        }
        Ok(())
    }
}

/// The long-running scheduler. Create with [`Server::start`] (in-memory)
/// or [`Server::recover`] (journaled, crash-only); submit through it (or
/// a [`crate::Client`]); stop with [`Server::shutdown`] +
/// [`Server::join`], or gracefully with [`Server::drain`].
pub struct Server {
    cfg: ServerConfig,
    pool: Arc<DevicePool>,
    sched: Mutex<Sched>,
    event: Condvar,
    /// Steps executed server-wide (every rank's every step). Behind an
    /// `Arc` so a job's progress sink can hold it without borrowing the
    /// server.
    total_steps: Arc<AtomicU64>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Boot an in-memory server: build the device pool and spawn the
    /// worker pool. Nothing is persisted — a crash loses queue and
    /// cache (use [`Server::recover`] for the crash-only variant).
    pub fn start(cfg: ServerConfig) -> Arc<Server> {
        let cache = ResultCache::new(cfg.cache_max_entries, cfg.cache_ttl);
        Self::spawn(
            cfg,
            Sched {
                queue: Vec::new(),
                jobs: HashMap::new(),
                cache,
                next_id: 1,
                running: 0,
                shutting_down: false,
                draining: false,
                journal: None,
                epoch: 0,
                quarantine: HashMap::new(),
                shed_total: 0,
                deadline_exceeded: 0,
                worker_panics: 0,
            },
        )
    }

    /// Boot a journaled server over `dir`, replaying any journal found
    /// there first: completed results rehydrate the cache, jobs that
    /// were queued or running when the previous incarnation died are
    /// re-enqueued at their original priority, and a torn journal tail
    /// is truncated, not fatal. Every subsequent state transition is
    /// journaled durably. Idempotent: recovering the same directory
    /// twice in a row reconstructs identical state.
    pub fn recover(
        cfg: ServerConfig,
        dir: impl AsRef<Path>,
    ) -> io::Result<(Arc<Server>, RecoverySummary)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (mut jrn, replayed) = Journal::open(dir.join("journal.log"))?;

        // -- Fold the record stream into final job states + cache -----
        struct RJob {
            rec: Record,
            state: JobState,
            cached: bool,
            message: Option<String>,
        }
        let mut epoch_max = 0u64;
        let mut folded: BTreeMap<u64, RJob> = BTreeMap::new();
        let mut cache = ResultCache::new(cfg.cache_max_entries, cfg.cache_ttl);
        let mut overflow_evicted: Vec<CacheKey> = Vec::new();
        let mut quarantine: HashMap<CacheKey, String> = HashMap::new();
        let mut summary = RecoverySummary {
            records: replayed.records.len(),
            truncated_bytes: replayed.truncated_bytes,
            torn: replayed.torn.clone(),
            ..Default::default()
        };
        for (epoch, rec) in &replayed.records {
            epoch_max = epoch_max.max(*epoch);
            match rec {
                Record::Boot => {}
                Record::Submitted { id, .. } => {
                    folded.insert(
                        *id,
                        RJob {
                            rec: rec.clone(),
                            state: JobState::Queued,
                            cached: false,
                            message: None,
                        },
                    );
                }
                Record::Started { id } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Running;
                    }
                }
                Record::Done { id, cached } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Done;
                        j.cached = *cached;
                    }
                }
                Record::Failed { id, message } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Failed;
                        j.message = Some(message.clone());
                    }
                }
                Record::Cancelled { id, message } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Cancelled;
                        j.message = Some(message.clone());
                    }
                }
                Record::CacheInsert {
                    deck_hash,
                    version_tag,
                    code_rev,
                    n_ranks,
                    seed,
                    report,
                } => {
                    // A result computed by another build is stale
                    // physics: drop it rather than serve it.
                    if code_rev != journal::CODE_REV {
                        summary.dropped_stale_cache += 1;
                        continue;
                    }
                    let (Ok(version), Ok(full)) =
                        (crate::wire::parse_version(version_tag), report.to_report())
                    else {
                        summary.dropped_stale_cache += 1;
                        continue;
                    };
                    let key = CacheKey {
                        deck_hash: *deck_hash,
                        version,
                        code_rev: journal::CODE_REV,
                        n_ranks: *n_ranks as usize,
                        seed: *seed,
                    };
                    overflow_evicted.extend(cache.insert(key, Arc::new(full)));
                }
                Record::Evicted {
                    deck_hash,
                    version_tag,
                    n_ranks,
                    seed,
                    ..
                } => {
                    if let Ok(version) = crate::wire::parse_version(version_tag) {
                        // Replaying an eviction the previous incarnation
                        // already performed and counted.
                        cache.remove(&CacheKey {
                            deck_hash: *deck_hash,
                            version,
                            code_rev: journal::CODE_REV,
                            n_ranks: *n_ranks as usize,
                            seed: *seed,
                        });
                    }
                }
                Record::Quarantined {
                    id,
                    deck_hash,
                    version_tag,
                    code_rev,
                    n_ranks,
                    seed,
                    message,
                } => {
                    if let Some(j) = folded.get_mut(id) {
                        j.state = JobState::Quarantined;
                        j.message = Some(message.clone());
                    }
                    // Quarantine is per-build, like cache entries: a new
                    // build may have fixed the crash, so keys stamped by
                    // another build lapse at recovery.
                    if code_rev == journal::CODE_REV {
                        if let Ok(version) = crate::wire::parse_version(version_tag) {
                            quarantine.insert(
                                CacheKey {
                                    deck_hash: *deck_hash,
                                    version,
                                    code_rev: journal::CODE_REV,
                                    n_ranks: *n_ranks as usize,
                                    seed: *seed,
                                },
                                message.clone(),
                            );
                        }
                    }
                }
                Record::Reinstated {
                    deck_hash,
                    version_tag,
                    code_rev,
                    n_ranks,
                    seed,
                } => {
                    if code_rev == journal::CODE_REV {
                        if let Ok(version) = crate::wire::parse_version(version_tag) {
                            quarantine.remove(&CacheKey {
                                deck_hash: *deck_hash,
                                version,
                                code_rev: journal::CODE_REV,
                                n_ranks: *n_ranks as usize,
                                seed: *seed,
                            });
                        }
                    }
                }
            }
        }

        // -- Rebuild the job table and queue --------------------------
        let mut jobs = HashMap::new();
        let mut queue = Vec::new();
        let mut next_id = 1u64;
        for (id, rj) in &folded {
            next_id = next_id.max(id + 1);
            let spec = match journal::spec_of_submitted(&rj.rec) {
                Ok(s) => s,
                Err(_) => {
                    // The deck no longer parses under this build: the
                    // job cannot be reconstructed, so it is dropped (and
                    // counted). Replay stays idempotent — the next boot
                    // reaches the same verdict.
                    summary.dropped_unparseable += 1;
                    continue;
                }
            };
            let key = CacheKey::for_spec(&spec);
            let progress = Arc::new(JobProgress::default());
            let (state, result, error) = match rj.state {
                // Interrupted jobs (queued or mid-run at crash time)
                // re-enter the queue; their original priority lives in
                // the spec, so scheduling order is preserved.
                JobState::Queued | JobState::Running => {
                    queue.push(*id);
                    summary.requeued += 1;
                    (JobState::Queued, None, None)
                }
                JobState::Done => {
                    summary.done += 1;
                    progress
                        .steps_done
                        .store(spec.deck.time.n_steps, Ordering::SeqCst);
                    // The result comes back from the rehydrated cache;
                    // if it was evicted before the crash the job stays
                    // Done but its report is gone (result() reports
                    // that, structurally).
                    (JobState::Done, cache.peek(&key), None)
                }
                JobState::Failed => {
                    summary.failed += 1;
                    (
                        JobState::Failed,
                        None,
                        Some(rj.message.clone().unwrap_or_else(|| "failed".into())),
                    )
                }
                JobState::Cancelled => {
                    summary.cancelled += 1;
                    (
                        JobState::Cancelled,
                        None,
                        Some(rj.message.clone().unwrap_or_else(|| "cancelled".into())),
                    )
                }
                JobState::Quarantined => {
                    summary.quarantined += 1;
                    (
                        JobState::Quarantined,
                        None,
                        Some(rj.message.clone().unwrap_or_else(|| "quarantined".into())),
                    )
                }
            };
            jobs.insert(
                *id,
                JobRecord {
                    cached: rj.cached,
                    spec,
                    key,
                    state,
                    progress,
                    result,
                    error,
                    submitted_at: Instant::now(),
                    attempts: 0,
                },
            );
        }
        summary.cache_entries = cache.len();
        summary.quarantine_keys = quarantine.len();
        summary.epoch = epoch_max + 1;

        // -- Stamp the new epoch and journal recovery-time evictions --
        if let Err(e) = jrn.append(summary.epoch, &Record::Boot) {
            return Err(io::Error::new(
                e.kind(),
                format!("journal boot record: {e}"),
            ));
        }
        for k in &overflow_evicted {
            let _ = jrn.append(summary.epoch, &Record::evicted(k));
        }

        let epoch = summary.epoch;
        let server = Self::spawn(
            cfg,
            Sched {
                queue,
                jobs,
                cache,
                next_id,
                running: 0,
                shutting_down: false,
                draining: false,
                journal: Some(jrn),
                epoch,
                quarantine,
                shed_total: 0,
                deadline_exceeded: 0,
                worker_panics: 0,
            },
        );

        // Lease-ledger invariant: the pool is a fresh incarnation, so
        // every lease the dead server held is gone — nothing may be
        // busy, and grant/release counters must balance at zero. The
        // re-enqueued jobs will take *new* leases; a stale lease from
        // the previous incarnation can never be released into this pool
        // (gpusim rejects cross-incarnation releases).
        let ps = server.pool.stats();
        assert_eq!(
            (ps.busy, ps.leases_granted - ps.leases_released),
            (0, 0),
            "recovered pool must start with a balanced, empty lease ledger"
        );

        Ok((server, summary))
    }

    fn spawn(cfg: ServerConfig, sched: Sched) -> Arc<Server> {
        assert!(cfg.n_workers > 0, "server needs at least one worker");
        let pool = Arc::new(DevicePool::new(cfg.device.clone(), cfg.n_devices));
        let server = Arc::new(Server {
            cfg,
            pool,
            sched: Mutex::new(sched),
            event: Condvar::new(),
            total_steps: Arc::new(AtomicU64::new(0)),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = relock(&server.workers);
        for i in 0..server.cfg.n_workers {
            let s = server.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn worker"),
            );
        }
        if server.cfg.canary_every > Duration::ZERO {
            let s = server.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("serve-canary".into())
                    .spawn(move || s.canary_loop())
                    .expect("spawn canary"),
            );
        }
        drop(workers);
        server
    }

    /// The device pool (shared with any embedding scheduler).
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Append a record to the journal, if there is one. An append
    /// failure is logged and survived: a full disk degrades durability,
    /// it does not take the service down.
    fn jappend(sched: &mut Sched, rec: &Record) {
        let epoch = sched.epoch;
        if let Some(j) = sched.journal.as_mut() {
            if let Err(e) = j.append(epoch, rec) {
                eprintln!("mas-serve: journal append failed: {e}");
            }
        }
    }

    /// Compact the journal into a snapshot of live state once enough
    /// records have accumulated since the last compaction.
    fn maybe_compact(&self, sched: &mut Sched) {
        let due = sched
            .journal
            .as_ref()
            .is_some_and(|j| j.appended_since_compaction() >= self.cfg.compact_every);
        if !due {
            return;
        }
        let recs = Self::snapshot_records(sched);
        let epoch = sched.epoch;
        if let Some(j) = sched.journal.as_mut() {
            if let Err(e) = j.compact(epoch, &recs) {
                eprintln!("mas-serve: journal compaction failed: {e}");
            }
        }
    }

    /// Serialise live state as a record stream — a compacted journal is
    /// just a journal whose history happens to be minimal.
    fn snapshot_records(sched: &Sched) -> Vec<Record> {
        let mut recs = vec![Record::Boot];
        for (key, report) in sched.cache.entries() {
            recs.push(Record::cache_insert(key, report));
        }
        let mut ids: Vec<u64> = sched.jobs.keys().copied().collect();
        ids.sort_unstable();
        let mut quarantined_keys: Vec<CacheKey> = Vec::new();
        for id in ids {
            let job = &sched.jobs[&id];
            recs.push(Record::submitted(id, &job.spec));
            match job.state {
                JobState::Queued => {}
                // Replayed as interrupted → re-enqueued, which is
                // exactly right for a job running at snapshot time.
                JobState::Running => recs.push(Record::Started { id }),
                JobState::Done => recs.push(Record::Done {
                    id,
                    cached: job.cached,
                }),
                JobState::Failed => recs.push(Record::Failed {
                    id,
                    message: job.error.clone().unwrap_or_default(),
                }),
                JobState::Cancelled => recs.push(Record::Cancelled {
                    id,
                    message: job.error.clone().unwrap_or_default(),
                }),
                JobState::Quarantined => {
                    recs.push(Record::quarantined(
                        id,
                        &job.key,
                        job.error.as_deref().unwrap_or("quarantined"),
                    ));
                    quarantined_keys.push(job.key.clone());
                }
            }
        }
        // A quarantined job whose key an operator has since cleared must
        // replay as cleared: the snapshot keeps the job's terminal state
        // above but follows it with the reinstatement.
        quarantined_keys.sort_by_key(|k| (k.deck_hash, k.n_ranks, k.seed));
        quarantined_keys.dedup();
        for key in quarantined_keys {
            if !sched.quarantine.contains_key(&key) {
                recs.push(Record::reinstated(&key));
            }
        }
        recs
    }

    /// Submit a job. Returns its id, or a structured rejection; a
    /// resubmission of an already-computed run completes instantly from
    /// the cache (status shows `cached`, zero steps execute).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        // Feasibility and deck validity are answered before touching the
        // scheduler at all. Feasibility is measured against *healthy*
        // capacity: a pool of 4 with 2 suspect devices can only promise
        // 2-rank jobs, and the error names both numbers.
        let pool_size = self.cfg.n_devices;
        let healthy = self.pool.n_healthy();
        if spec.n_ranks == 0 || spec.n_ranks > pool_size || spec.n_ranks > healthy {
            return Err(SubmitError::Infeasible {
                needed: spec.n_ranks,
                pool: pool_size,
                healthy,
            });
        }
        spec.deck.validated().map_err(SubmitError::InvalidDeck)?;

        let key = CacheKey::for_spec(&spec);
        let mut sched = relock(&self.sched);
        if sched.shutting_down || sched.draining {
            return Err(SubmitError::ShuttingDown);
        }
        // Crash-loop circuit breaker: this exact run already panicked out
        // its whole attempt budget, so don't burn devices re-crashing it.
        if let Some(message) = sched.quarantine.get(&key) {
            return Err(SubmitError::Quarantined {
                message: message.clone(),
            });
        }
        // Expire TTL-stale results before consulting the cache, so an
        // expired entry reads as a miss (and its eviction is journaled).
        let expired = sched.cache.sweep(Instant::now());
        for k in &expired {
            Self::jappend(&mut sched, &Record::evicted(k));
        }
        let id = sched.next_id;

        // Cache hit: the job is born terminal. It consumes no queue
        // slot, no quota and no devices — serving a cached result is
        // free, so it is exempt from backpressure.
        if let Some(report) = sched.cache.lookup(&key) {
            sched.next_id += 1;
            Self::jappend(&mut sched, &Record::submitted(id, &spec));
            Self::jappend(&mut sched, &Record::Done { id, cached: true });
            let rec = JobRecord {
                spec,
                key,
                state: JobState::Done,
                cached: true,
                progress: Arc::new(JobProgress::default()),
                result: Some(report),
                error: None,
                submitted_at: Instant::now(),
                attempts: 0,
            };
            rec.progress
                .steps_done
                .store(rec.spec.deck.time.n_steps, Ordering::SeqCst);
            sched.jobs.insert(id, rec);
            self.maybe_compact(&mut sched);
            drop(sched);
            self.event.notify_all();
            return Ok(JobId(id));
        }

        let live = sched
            .jobs
            .values()
            .filter(|j| j.spec.tenant == spec.tenant && !j.state.is_terminal())
            .count();
        if live >= self.cfg.tenant_quota {
            return Err(SubmitError::QuotaExceeded {
                tenant: spec.tenant,
                quota: self.cfg.tenant_quota,
            });
        }
        // Priority-aware load shedding: past either watermark the queue
        // only accepts work that outranks something already waiting — and
        // makes room by shedding the lowest-priority queued job with a
        // retry-after notice. Equal-or-lower-priority newcomers are the
        // ones turned away, so high-priority work still lands under
        // overload.
        let depth_over = self.cfg.shed_queue_depth > 0
            && sched.queue.len() >= self.cfg.shed_queue_depth;
        let now = Instant::now();
        let age_over = self.cfg.shed_oldest_ms > 0
            && sched
                .queue
                .iter()
                .filter_map(|qid| sched.jobs.get(qid))
                .map(|j| now.saturating_duration_since(j.submitted_at).as_millis() as u64)
                .max()
                .unwrap_or(0)
                >= self.cfg.shed_oldest_ms;
        if (depth_over || age_over) && !sched.queue.is_empty() {
            // Victim: lowest priority; newest submission breaks ties (it
            // has waited least).
            let &victim = sched
                .queue
                .iter()
                .min_by_key(|qid| (sched.jobs[qid].spec.priority, std::cmp::Reverse(**qid)))
                .expect("queue non-empty");
            let victim_priority = sched.jobs[&victim].spec.priority;
            if spec.priority <= victim_priority {
                return Err(SubmitError::Overloaded {
                    retry_after_ms: self.cfg.retry_after_ms,
                });
            }
            let message = format!(
                "shed under overload (priority {victim_priority}); retry after {}ms",
                self.cfg.retry_after_ms
            );
            sched.queue.retain(|&q| q != victim);
            sched.shed_total += 1;
            if let Some(job) = sched.jobs.get_mut(&victim) {
                job.state = JobState::Cancelled;
                job.error = Some(message.clone());
            }
            Self::jappend(
                &mut sched,
                &Record::Cancelled {
                    id: victim,
                    message,
                },
            );
        }

        if sched.queue.len() >= self.cfg.max_queue {
            return Err(SubmitError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }

        sched.next_id += 1;
        // Journal before acknowledging: once `Ok(id)` is returned the
        // submission must survive SIGKILL.
        Self::jappend(&mut sched, &Record::submitted(id, &spec));
        sched.jobs.insert(
            id,
            JobRecord {
                spec,
                key,
                state: JobState::Queued,
                cached: false,
                progress: Arc::new(JobProgress::default()),
                result: None,
                error: None,
                submitted_at: Instant::now(),
                attempts: 0,
            },
        );
        sched.queue.push(id);
        self.maybe_compact(&mut sched);
        drop(sched);
        self.event.notify_all();
        Ok(JobId(id))
    }

    /// Status snapshot of a job (`None` for an unknown id).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let sched = relock(&self.sched);
        sched.jobs.get(&id.0).map(|j| j.status(id))
    }

    /// The recovery event log streamed so far (`None` for unknown id).
    pub fn recovery_log(&self, id: JobId) -> Option<Vec<String>> {
        let sched = relock(&self.sched);
        sched
            .jobs
            .get(&id.0)
            .map(|j| relock(&j.progress.recovery_log).clone())
    }

    /// Block until the job reaches a terminal state; returns the final
    /// status (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut sched = relock(&self.sched);
        loop {
            let status = sched.jobs.get(&id.0)?.status(id);
            if status.state.is_terminal() {
                return Some(status);
            }
            sched = self.event.wait(sched).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Fetch a finished job's result: `Ok` with the report for `Done`,
    /// `Err` with the failure message otherwise. `None` while the job is
    /// still queued/running, or for an unknown id. A job restored as
    /// `Done` whose result had been evicted from the cache before the
    /// restart answers `Err` here — the completion survived, the report
    /// did not, and the caller can resubmit (which recomputes).
    #[allow(clippy::type_complexity)]
    pub fn result(&self, id: JobId) -> Option<Result<Arc<MultiRankReport>, String>> {
        let sched = relock(&self.sched);
        let job = sched.jobs.get(&id.0)?;
        match job.state {
            JobState::Done => Some(match &job.result {
                Some(r) => Ok(r.clone()),
                None => Err(format!(
                    "{} completed, but its result was evicted from the cache \
                     before the last restart; resubmit to recompute",
                    JobId(id.0)
                )),
            }),
            JobState::Failed | JobState::Cancelled | JobState::Quarantined => Some(Err(job
                .error
                .clone()
                .unwrap_or_else(|| job.state.name().into()))),
            JobState::Queued | JobState::Running => None,
        }
    }

    /// Cancel a job. Queued jobs cancel immediately; running jobs are
    /// asked to stop cooperatively at the next step boundary. Terminal
    /// jobs and unknown ids are an error.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut sched = relock(&self.sched);
        let Some(job) = sched.jobs.get_mut(&id.0) else {
            return Err(format!("unknown job id {}", id.0));
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled before start".into());
                sched.queue.retain(|&q| q != id.0);
                Self::jappend(
                    &mut sched,
                    &Record::Cancelled {
                        id: id.0,
                        message: "cancelled before start".into(),
                    },
                );
                drop(sched);
                self.event.notify_all();
                Ok(())
            }
            JobState::Running => {
                job.progress.cancel.store(true, Ordering::SeqCst);
                Ok(())
            }
            s => Err(format!("{id} is already {s}")),
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServerStats {
        let sched = relock(&self.sched);
        let mut done = 0;
        let mut failed = 0;
        let mut cancelled = 0;
        let mut quarantined = 0;
        for j in sched.jobs.values() {
            match j.state {
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Quarantined => quarantined += 1,
                _ => {}
            }
        }
        let now = Instant::now();
        let mut oldest_queued_ms = 0u64;
        let mut tenants: BTreeMap<String, usize> = BTreeMap::new();
        for qid in &sched.queue {
            let Some(job) = sched.jobs.get(qid) else {
                continue;
            };
            oldest_queued_ms = oldest_queued_ms
                .max(now.saturating_duration_since(job.submitted_at).as_millis() as u64);
            *tenants.entry(job.spec.tenant.clone()).or_insert(0) += 1;
        }
        ServerStats {
            pool: self.pool.stats(),
            queued: sched.queue.len(),
            running: sched.running,
            done,
            failed,
            cancelled,
            quarantined,
            cache_hits: sched.cache.hits(),
            cache_misses: sched.cache.misses(),
            cache_entries: sched.cache.len(),
            cache_evictions: sched.cache.evictions(),
            total_steps: self.total_steps.load(Ordering::SeqCst),
            oldest_queued_ms,
            tenants_queued: tenants.into_iter().collect(),
            shed_total: sched.shed_total,
            deadline_exceeded: sched.deadline_exceeded,
            worker_panics: sched.worker_panics,
            quarantine_keys: sched.quarantine.len(),
            devices: self.pool.device_health(),
        }
    }

    /// The quarantined run keys with their final failure messages,
    /// deck-hash ordered for stable listings.
    pub fn quarantine_list(&self) -> Vec<(CacheKey, String)> {
        let sched = relock(&self.sched);
        let mut v: Vec<(CacheKey, String)> = sched
            .quarantine
            .iter()
            .map(|(k, m)| (k.clone(), m.clone()))
            .collect();
        v.sort_by_key(|(k, _)| (k.deck_hash, k.n_ranks, k.seed));
        v
    }

    /// Lift the crash-loop quarantine — every key, or just those for one
    /// deck hash. Returns the number of keys cleared. Each clearance is
    /// journaled as a `Reinstated` record, so the decision survives
    /// restart like the quarantine itself did.
    pub fn quarantine_clear(&self, deck_hash: Option<u64>) -> usize {
        let mut sched = relock(&self.sched);
        let keys: Vec<CacheKey> = sched
            .quarantine
            .keys()
            .filter(|k| deck_hash.is_none_or(|h| k.deck_hash == h))
            .cloned()
            .collect();
        for k in &keys {
            sched.quarantine.remove(k);
            Self::jappend(&mut sched, &Record::reinstated(k));
        }
        keys.len()
    }

    /// Steps executed server-wide since boot (the cache-hit invariant:
    /// a resubmission leaves this unchanged).
    pub fn total_steps(&self) -> u64 {
        self.total_steps.load(Ordering::SeqCst)
    }

    /// Graceful wind-down: close intake (submissions answer
    /// [`SubmitError::ShuttingDown`]), let every queued and running job
    /// finish and journal its terminal state, then shut down. Blocks
    /// until the queue is empty and nothing is running; call
    /// [`Server::join`] afterwards. The complement of the crash path:
    /// drain loses nothing *without* needing recovery.
    pub fn drain(&self) {
        let mut sched = relock(&self.sched);
        sched.draining = true;
        drop(sched);
        self.event.notify_all();
        let mut sched = relock(&self.sched);
        while !(sched.queue.is_empty() && sched.running == 0) {
            sched = self.event.wait(sched).unwrap_or_else(|p| p.into_inner());
        }
        drop(sched);
        self.shutdown();
    }

    /// Begin shutdown: reject new submissions, cancel every queued job,
    /// ask running jobs to stop cooperatively, and wake everyone.
    pub fn shutdown(&self) {
        let mut sched = relock(&self.sched);
        sched.shutting_down = true;
        let queued: Vec<u64> = sched.queue.drain(..).collect();
        for id in queued {
            if let Some(job) = sched.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.error = Some("server shutdown".into());
            }
            Self::jappend(
                &mut sched,
                &Record::Cancelled {
                    id,
                    message: "server shutdown".into(),
                },
            );
        }
        for job in sched.jobs.values() {
            if job.state == JobState::Running {
                job.progress.cancel.store(true, Ordering::SeqCst);
            }
        }
        drop(sched);
        self.pool.close();
        self.event.notify_all();
    }

    /// Wait for every worker to exit (call after [`Server::shutdown`]).
    pub fn join(&self) {
        let handles: Vec<_> = relock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    // -- scheduling internals ------------------------------------------------

    /// Pick the best runnable queued job: among jobs whose rank count
    /// fits the currently *grantable* devices (free and not suspect —
    /// sizing against raw free slots would deadlock workers on leases
    /// the health layer will never grant), the highest priority wins
    /// and submission order breaks ties. Returns its queue position.
    fn pick(&self, sched: &Sched) -> Option<usize> {
        let free = self.pool.n_grantable();
        let mut best: Option<(usize, i32, u64)> = None;
        for (pos, &id) in sched.queue.iter().enumerate() {
            let job = &sched.jobs[&id];
            if job.spec.n_ranks > free {
                continue;
            }
            let cand = (pos, job.spec.priority, id);
            best = match best {
                // Higher priority first; earlier submission (smaller id)
                // breaks ties.
                Some((_, p, i)) if (cand.1, std::cmp::Reverse(cand.2)) <= (p, std::cmp::Reverse(i)) => best,
                _ => Some(cand),
            };
        }
        best.map(|(pos, _, _)| pos)
    }

    /// Fail every queued job whose deadline has already passed — it will
    /// never run, so it should not hold a queue slot or ever lease a
    /// device. Called from the worker claim loop under the lock.
    fn expire_queued(&self, sched: &mut Sched, now: Instant) {
        let expired: Vec<u64> = sched
            .queue
            .iter()
            .copied()
            .filter(|qid| sched.jobs[qid].deadline().is_some_and(|d| now >= d))
            .collect();
        for id in expired {
            sched.queue.retain(|&q| q != id);
            sched.deadline_exceeded += 1;
            let message = {
                let job = sched.jobs.get_mut(&id).expect("queued job exists");
                job.state = JobState::Failed;
                let m = format!(
                    "deadline exceeded ({}ms) before the job could start",
                    job.spec.deadline_ms
                );
                job.error = Some(m.clone());
                m
            };
            Self::jappend(&mut *sched, &Record::Failed { id, message });
            self.event.notify_all();
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            // Claim a job and its devices atomically under the scheduler
            // lock: the feasibility check and the lease cannot race
            // another worker.
            let (id, spec, progress, deadline, lease) = {
                let mut sched = relock(&self.sched);
                let (id, lease) = loop {
                    if sched.shutting_down {
                        return;
                    }
                    self.expire_queued(&mut sched, Instant::now());
                    if let Some(pos) = self.pick(&sched) {
                        let id = sched.queue[pos];
                        let key = sched.jobs[&id].key.clone();
                        // Claim-time cache collapse: a queued job whose
                        // result already exists (typically a recovered
                        // duplicate of a job that completed in a prior
                        // epoch) finishes here — zero steps, zero
                        // leases. `claim_hit` counts the hit but never a
                        // miss, so ordinary runs don't distort counters.
                        if let Some(report) = sched.cache.claim_hit(&key) {
                            sched.queue.remove(pos);
                            let n_steps = {
                                let job =
                                    sched.jobs.get_mut(&id).expect("picked job exists");
                                job.state = JobState::Done;
                                job.cached = true;
                                job.result = Some(report);
                                job.spec.deck.time.n_steps
                            };
                            sched.jobs[&id]
                                .progress
                                .steps_done
                                .store(n_steps, Ordering::SeqCst);
                            Self::jappend(&mut sched, &Record::Done { id, cached: true });
                            self.event.notify_all();
                            continue;
                        }
                        let n = sched.jobs[&id].spec.n_ranks;
                        match self.pool.try_lease(n) {
                            Ok(Some(lease)) => {
                                sched.queue.remove(pos);
                                break (id, lease);
                            }
                            // Raced or closed: leave it queued and
                            // retry. With leases granted only under this
                            // lock the None arm is unreachable, but
                            // waiting is the safe answer if that ever
                            // changes.
                            Ok(None) => {}
                            Err(_) => return, // pool closed: shutdown
                        }
                    }
                    // Sleep — with a timeout while any queued job has a
                    // deadline, so expiry fires even on an idle server.
                    let deadline_pending = sched
                        .queue
                        .iter()
                        .any(|qid| sched.jobs[qid].deadline().is_some());
                    sched = if deadline_pending {
                        self.event
                            .wait_timeout(sched, Duration::from_millis(20))
                            .unwrap_or_else(|p| p.into_inner())
                            .0
                    } else {
                        self.event.wait(sched).unwrap_or_else(|p| p.into_inner())
                    };
                };
                sched.running += 1;
                let (spec, progress, deadline) = {
                    let job = sched.jobs.get_mut(&id).expect("picked job exists");
                    job.state = JobState::Running;
                    job.attempts += 1;
                    (job.spec.clone(), job.progress.clone(), job.deadline())
                };
                Self::jappend(&mut sched, &Record::Started { id });
                (id, spec, progress, deadline, lease)
            };
            self.event.notify_all(); // status waiters see Running

            // A deterministic injected device fault (chaos drills, tests)
            // fails the attempt before any physics runs, attributed to
            // the named device. Otherwise the job body runs under
            // `catch_unwind`: a panicking deck becomes a classified
            // failure of *this job*, never a dead worker thread and a
            // poisoned scheduler.
            enum Outcome {
                Done(Box<MultiRankReport>),
                Fault(gpusim::DeviceId, String),
                Error(String),
                Panicked(String),
            }
            let devices: Vec<gpusim::DeviceId> = lease.devices().to_vec();
            let outcome = match self.pool.consume_injected_fault(&devices) {
                Some(dev) => Outcome::Fault(dev, format!("injected fault on device {dev}")),
                None => {
                    match catch_unwind(AssertUnwindSafe(|| {
                        self.execute(&spec, &progress, deadline)
                    })) {
                        Ok(Ok(report)) => Outcome::Done(Box::new(report)),
                        Ok(Err(message)) => Outcome::Error(message),
                        Err(payload) => Outcome::Panicked(panic_message(payload)),
                    }
                }
            };

            if let Err(e) = self.pool.release(lease) {
                // A ledger bug must surface in stats/logs, not corrupt
                // the pool silently.
                eprintln!("mas-serve: lease release failed for {}: {e}", JobId(id));
            }

            let cancelled = progress.cancel.load(Ordering::SeqCst);
            let deadline_hit = progress.deadline_hit.load(Ordering::SeqCst);

            // Device attribution, outside the scheduler lock: success
            // clears failure streaks; an injected fault blames exactly
            // the faulted device; a plain run error blames the leased
            // devices. Panics and cooperative stops (cancel, deadline)
            // say nothing about the hardware.
            match &outcome {
                Outcome::Done(_) => {
                    self.pool.report_result(&devices, true);
                }
                Outcome::Fault(dev, _) => {
                    self.pool.report_result(&[*dev], false);
                }
                Outcome::Error(_) if !cancelled && !deadline_hit => {
                    self.pool.report_result(&devices, false);
                }
                _ => {}
            }

            let mut sched = relock(&self.sched);
            sched.running -= 1;
            match outcome {
                Outcome::Done(report) => {
                    let report = Arc::new(*report);
                    let key = {
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Done;
                        job.result = Some(report.clone());
                        job.key.clone()
                    };
                    // Write order matters: the result must be durable
                    // before the Done that references it, so a replay
                    // never sees a completed job with no result through
                    // any crash point.
                    Self::jappend(&mut sched, &Record::cache_insert(&key, &report));
                    let evicted = sched.cache.insert(key, report);
                    for k in &evicted {
                        Self::jappend(&mut sched, &Record::evicted(k));
                    }
                    Self::jappend(&mut sched, &Record::Done { id, cached: false });
                }
                other => {
                    let (message, panicked) = match other {
                        Outcome::Fault(_, m) => (m, false),
                        Outcome::Error(m) => (m, false),
                        Outcome::Panicked(m) => {
                            sched.worker_panics += 1;
                            (m, true)
                        }
                        Outcome::Done(_) => unreachable!("handled above"),
                    };
                    let (attempts, max_attempts, key) = {
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        (job.attempts, job.spec.max_attempts, job.key.clone())
                    };
                    if deadline_hit && !cancelled {
                        // Deadline expiry is terminal — more attempts
                        // would only blow further past it.
                        sched.deadline_exceeded += 1;
                        let message =
                            format!("deadline exceeded after {}ms", spec.deadline_ms);
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Failed;
                        job.error = Some(message.clone());
                        Self::jappend(&mut sched, &Record::Failed { id, message });
                    } else if cancelled {
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Cancelled;
                        job.error = Some(message.clone());
                        Self::jappend(&mut sched, &Record::Cancelled { id, message });
                    } else if attempts < max_attempts
                        && !sched.shutting_down
                        && !sched.draining
                    {
                        // Budget left: back on the queue. No journal
                        // record — a crash replays the job as interrupted
                        // and re-enqueues it anyway, which is the same
                        // thing.
                        progress.log(format!(
                            "attempt {attempts}/{max_attempts} failed: {message}; retrying"
                        ));
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Queued;
                        sched.queue.push(id);
                    } else if panicked {
                        // Every attempt in the budget died by panic: trip
                        // the circuit breaker so resubmissions of this
                        // exact run are refused until an operator clears
                        // it.
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Quarantined;
                        job.error = Some(message.clone());
                        sched.quarantine.insert(key.clone(), message.clone());
                        Self::jappend(&mut sched, &Record::quarantined(id, &key, &message));
                    } else {
                        let job = sched.jobs.get_mut(&id).expect("running job exists");
                        job.state = JobState::Failed;
                        job.error = Some(message.clone());
                        Self::jappend(&mut sched, &Record::Failed { id, message });
                    }
                }
            }
            self.maybe_compact(&mut sched);
            drop(sched);
            self.event.notify_all();
        }
    }

    /// Probe loop for suspect devices: every `canary_every`, lease each
    /// suspect slot by name, run a one-step micro-deck through the full
    /// supervisor on it, and reinstate the device if the probe passes.
    /// An injected fault still pending on the device fails the probe
    /// (and is consumed), so a device scripted to stay sick stays out
    /// of rotation.
    fn canary_loop(self: Arc<Self>) {
        let micro = {
            let mut d = mas_config::Deck::preset_quickstart();
            d.grid.nr = 4;
            d.grid.nt = 4;
            d.grid.np = 4;
            d.time.n_steps = 1;
            d
        };
        loop {
            {
                let sched = relock(&self.sched);
                if sched.shutting_down {
                    return;
                }
            }
            for id in self.pool.suspects() {
                let Ok(Some(lease)) = self.pool.lease_specific(id) else {
                    continue; // busy or closed: probe next round
                };
                let devices: Vec<gpusim::DeviceId> = lease.devices().to_vec();
                let passed = self.pool.consume_injected_fault(&devices).is_none()
                    && catch_unwind(AssertUnwindSafe(|| {
                        // No progress sink: the canary must not perturb
                        // `total_steps` (the cache-hit invariant) or any
                        // job's counters.
                        mas_mhd::run_supervised_with_progress(
                            &micro,
                            stdpar::CodeVersion::A,
                            self.pool.spec().clone(),
                            1,
                            0,
                            false,
                            None,
                        )
                    }))
                    .map(|r| r.is_ok())
                    .unwrap_or(false);
                if let Err(e) = self.pool.release(lease) {
                    eprintln!("mas-serve: canary lease release failed: {e}");
                }
                if passed {
                    if self.pool.reinstate(id) {
                        // Healthy capacity grew: blocked pickers may now
                        // have enough grantable devices.
                        self.event.notify_all();
                    }
                } else {
                    self.pool.report_result(&[id], false);
                }
            }
            std::thread::sleep(self.cfg.canary_every);
        }
    }

    /// Run one job under the supervisor, streaming progress into its
    /// live counters. Inherits checkpointing, rollback and rank-respawn
    /// recovery wholesale — this is just the observation plumbing. The
    /// deadline rides the same cooperative channel as cancellation: the
    /// sink answers `false` at the first step boundary past it.
    fn execute(
        &self,
        spec: &JobSpec,
        progress: &Arc<JobProgress>,
        deadline: Option<Instant>,
    ) -> Result<MultiRankReport, String> {
        // Deliberate failpoint: a deck whose problem is named
        // `chaos-panic` panics the worker body on purpose. The panic is
        // contained by the worker's `catch_unwind` and classified like
        // any organically panicking deck — the deterministic way to
        // drive the panic → retry → quarantine path end-to-end (over
        // the wire, through journal replay, in the chaos soak) without
        // depending on a real crash bug to exist.
        if spec.deck.problem == "chaos-panic" {
            panic!("injected worker panic (problem = 'chaos-panic')");
        }
        let sink = {
            let progress = progress.clone();
            // The sink must be 'static (it crosses into rank threads),
            // so it holds the counter by Arc, not by borrowing `self`.
            let steps = self.total_steps.clone();
            progress_fn(move |e: &ProgressEvent| {
                match e {
                    ProgressEvent::Step { step, .. } => {
                        progress.steps_done.fetch_max(*step, Ordering::SeqCst);
                        steps.fetch_add(1, Ordering::SeqCst);
                    }
                    ProgressEvent::Rollback { rank, to_step } => {
                        progress.recovery_count.fetch_add(1, Ordering::SeqCst);
                        progress.log(format!("rank {rank}: rollback to step {to_step}"));
                    }
                    ProgressEvent::Restored { rank, step } => {
                        progress.recovery_count.fetch_add(1, Ordering::SeqCst);
                        progress.log(format!("rank {rank}: restored at step {step}"));
                    }
                    ProgressEvent::CheckpointCommitted { .. } => {}
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    progress.deadline_hit.store(true, Ordering::SeqCst);
                    return false;
                }
                !progress.cancel.load(Ordering::SeqCst)
            })
        };
        mas_mhd::run_supervised_with_progress(
            &spec.deck,
            spec.version,
            self.pool.spec().clone(),
            spec.n_ranks,
            spec.seed,
            false,
            Some(sink),
        )
        .map_err(|e| e.to_string())
    }
}
