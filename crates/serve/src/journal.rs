//! Write-ahead journal: the durability layer that makes `mas-serve`
//! crash-only.
//!
//! Every scheduler state transition is appended to `journal.log` in the
//! server's state directory *before* the transition is acknowledged, as
//! a CRC32-framed, fsync'd, epoch-stamped record. On boot,
//! [`crate::Server::recover`] replays the journal: completed results
//! rehydrate the content-addressed cache, jobs that were queued or
//! running re-enter the queue at their original priority, and a torn
//! tail (the record being written when the process died) is truncated,
//! not fatal.
//!
//! ## File layout
//!
//! ```text
//! header  b"MASJRNL\0" + u32 format version (1)
//! record* len u32 | payload | crc32(payload) u32      (little-endian)
//! ```
//!
//! Each payload is `epoch u64 | kind u8 | body…`. The epoch counts
//! server boots over this state directory: replay can tell a `Started`
//! from a previous life (the job was interrupted → re-enqueue) from one
//! written this boot. The framing reuses the `io::dump` hardening
//! idioms wholesale: every length is bounded **before** any allocation,
//! any flipped byte fails the CRC, trailing garbage is rejected — a
//! record is exactly its declared content or it is dropped.
//!
//! ## Torn tails and corruption
//!
//! Replay stops at the first frame that is short, oversized, fails its
//! CRC, or decodes to garbage, and reports the journal's valid prefix
//! plus where (and why) it stopped; [`Journal::open`] then truncates
//! the file to that prefix. A corrupted record is therefore *never
//! resurrected* — and because every record before it was fsync'd in
//! acknowledgement order, the prefix is exactly the state the server
//! had durably promised.
//!
//! ## Compaction
//!
//! The journal grows with every transition, so the server periodically
//! rewrites it as a snapshot of live state (cache entries + one record
//! chain per job) using the same record stream format — a compacted
//! journal *is* a journal. The rewrite goes to a `.compact` sibling,
//! is fsync'd, and atomically renamed over `journal.log` (the `io::dump`
//! crash-safe write pattern), so a crash mid-compaction leaves the old
//! journal authoritative.
//!
//! ## What a persisted result is
//!
//! A [`PersistedReport`] keeps the durable core of a
//! [`MultiRankReport`]: per-rank state hashes, step counts, model
//! timings and kernel censuses — everything result queries and the
//! bit-exactness contract need. Ephemeral diagnostics (history curves,
//! site registries, profiler spans, recovery logs) are deliberately not
//! persisted; a rehydrated report carries empty ones.

use crate::cache::CacheKey;
use crate::job::JobSpec;
use mas_config::Deck;
use mas_io::dump::{crc32, Crc32};
use mas_mhd::{MultiRankReport, RunReport};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"MASJRNL\0";
const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: u64 = 12;

/// Hard cap on one record's payload: a corrupt length field can never
/// size a huge allocation. Generous — the largest real record is a
/// `CacheInsert` (deck-free, ~100 bytes per rank) or a `Submitted`
/// carrying one deck text.
pub const MAX_RECORD_LEN: usize = 4 << 20;
/// Hard cap on any embedded string (deck text, tenant, error message).
pub const MAX_STR_LEN: usize = 1 << 20;
/// Hard cap on ranks per persisted report (sanity bound, far above any
/// real fleet here).
pub const MAX_REPORT_RANKS: usize = 65_536;

/// The build that wrote a record's result payload — cache entries from
/// another build are dropped at recovery (stale physics must never be
/// served).
pub const CODE_REV: &str = env!("CARGO_PKG_VERSION");

// ---------------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------------

/// The durable core of one rank's [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct PersistedRank {
    /// Rank id.
    pub rank: u32,
    /// World size.
    pub n_ranks: u32,
    /// Steps taken.
    pub steps: u64,
    /// Bitwise fingerprint of the final state.
    pub state_hash: u64,
    /// Model wall time, µs.
    pub wall_us: f64,
    /// Model MPI time, µs.
    pub mpi_us: f64,
    /// Model compute time, µs.
    pub compute_us: f64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Host-engine tiles dispatched.
    pub host_tiles: u64,
    /// Model bytes moved by kernels.
    pub kernel_bytes: f64,
    /// Final physical time.
    pub time: f64,
}

/// The durable core of a completed job's result.
#[derive(Clone, Debug, PartialEq)]
pub struct PersistedReport {
    /// The code version that ran (tag form, e.g. `"AD2XU"`).
    pub version_tag: String,
    /// Per-rank cores, rank order.
    pub ranks: Vec<PersistedRank>,
}

impl PersistedReport {
    /// Extract the durable core of a full report.
    pub fn from_report(report: &MultiRankReport) -> Self {
        Self {
            version_tag: report
                .ranks
                .first()
                .map(|r| r.version.tag().to_string())
                .unwrap_or_default(),
            ranks: report
                .ranks
                .iter()
                .map(|r| PersistedRank {
                    rank: r.rank as u32,
                    n_ranks: r.n_ranks as u32,
                    steps: r.steps as u64,
                    state_hash: r.state_hash,
                    wall_us: r.wall_us,
                    mpi_us: r.mpi_us,
                    compute_us: r.compute_us,
                    kernel_launches: r.kernel_launches,
                    host_tiles: r.host_tiles,
                    kernel_bytes: r.kernel_bytes,
                    time: r.time,
                })
                .collect(),
        }
    }

    /// Rebuild a full report; ephemeral diagnostics come back empty.
    pub fn to_report(&self) -> Result<MultiRankReport, String> {
        let version = crate::wire::parse_version(&self.version_tag)
            .unwrap_or(stdpar::CodeVersion::A);
        Ok(MultiRankReport {
            ranks: self
                .ranks
                .iter()
                .map(|p| RunReport {
                    version,
                    rank: p.rank as usize,
                    n_ranks: p.n_ranks as usize,
                    steps: p.steps as usize,
                    wall_us: p.wall_us,
                    mpi_us: p.mpi_us,
                    compute_us: p.compute_us,
                    kernel_launches: p.kernel_launches,
                    host_tiles: p.host_tiles,
                    state_hash: p.state_hash,
                    kernel_bytes: p.kernel_bytes,
                    hist: Vec::new(),
                    time: p.time,
                    registry: Default::default(),
                    race_audit: Default::default(),
                    spans: Vec::new(),
                    cat_us: Vec::new(),
                    recovery: Default::default(),
                    tile_plans: Vec::new(),
                })
                .collect(),
        })
    }
}

/// One journaled state transition.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A server booted over this state directory (epoch in the frame).
    Boot,
    /// A job was accepted. Enough to rebuild its [`JobSpec`] exactly.
    Submitted {
        /// Job id.
        id: u64,
        /// Accounted tenant.
        tenant: String,
        /// Code version tag.
        version_tag: String,
        /// Rank count.
        n_ranks: u32,
        /// RNG seed.
        seed: u64,
        /// Scheduling priority.
        priority: i32,
        /// Canonical deck text.
        deck_text: String,
    },
    /// A worker claimed the job and leased its devices.
    Started {
        /// Job id.
        id: u64,
    },
    /// The job completed. `cached` records whether it was served from
    /// the cache (born terminal) or actually ran.
    Done {
        /// Job id.
        id: u64,
        /// Served from cache?
        cached: bool,
    },
    /// The job failed.
    Failed {
        /// Job id.
        id: u64,
        /// Failure message.
        message: String,
    },
    /// The job was cancelled.
    Cancelled {
        /// Job id.
        id: u64,
        /// Cancellation note.
        message: String,
    },
    /// A result entered the content-addressed cache.
    CacheInsert {
        /// Deck content hash (the cache key's first component).
        deck_hash: u64,
        /// Code version tag.
        version_tag: String,
        /// Build that produced the result.
        code_rev: String,
        /// Rank layout.
        n_ranks: u32,
        /// RNG seed.
        seed: u64,
        /// The durable result core.
        report: PersistedReport,
    },
    /// A cache entry was evicted (capacity bound or TTL).
    Evicted {
        /// Deck content hash.
        deck_hash: u64,
        /// Code version tag.
        version_tag: String,
        /// Build that produced the evicted result.
        code_rev: String,
        /// Rank layout.
        n_ranks: u32,
        /// RNG seed.
        seed: u64,
    },
    /// A job's cache key entered crash-loop quarantine: every attempt in
    /// its budget died by worker panic, so resubmissions of the same run
    /// are rejected until the key is reinstated. Like cache entries,
    /// quarantine is per-build (`code_rev`): a new build may have fixed
    /// the crash, so recovery drops entries stamped by another build.
    Quarantined {
        /// The job whose final attempt tripped the breaker.
        id: u64,
        /// Deck content hash (the quarantine key's first component).
        deck_hash: u64,
        /// Code version tag.
        version_tag: String,
        /// Build whose workers the deck crashed.
        code_rev: String,
        /// Rank layout.
        n_ranks: u32,
        /// RNG seed.
        seed: u64,
        /// The final attempt's failure message.
        message: String,
    },
    /// A quarantined key was cleared by an operator (`quarantine clear`).
    Reinstated {
        /// Deck content hash.
        deck_hash: u64,
        /// Code version tag.
        version_tag: String,
        /// Build the quarantine belonged to.
        code_rev: String,
        /// Rank layout.
        n_ranks: u32,
        /// RNG seed.
        seed: u64,
    },
}

impl Record {
    /// A `Submitted` record for a spec (the deck travels as canonical
    /// text, so replay reconstructs it by content).
    pub fn submitted(id: u64, spec: &JobSpec) -> Self {
        Record::Submitted {
            id,
            tenant: spec.tenant.clone(),
            version_tag: spec.version.tag().to_string(),
            n_ranks: spec.n_ranks as u32,
            seed: spec.seed,
            priority: spec.priority,
            deck_text: spec.deck.to_deck_string(),
        }
    }

    /// A `CacheInsert` record for a key + full report.
    pub fn cache_insert(key: &CacheKey, report: &MultiRankReport) -> Self {
        Record::CacheInsert {
            deck_hash: key.deck_hash,
            version_tag: key.version.tag().to_string(),
            code_rev: key.code_rev.to_string(),
            n_ranks: key.n_ranks as u32,
            seed: key.seed,
            report: PersistedReport::from_report(report),
        }
    }

    /// An `Evicted` record for a key.
    pub fn evicted(key: &CacheKey) -> Self {
        Record::Evicted {
            deck_hash: key.deck_hash,
            version_tag: key.version.tag().to_string(),
            code_rev: key.code_rev.to_string(),
            n_ranks: key.n_ranks as u32,
            seed: key.seed,
        }
    }

    /// A `Quarantined` record for a job's key + final failure message.
    pub fn quarantined(id: u64, key: &CacheKey, message: &str) -> Self {
        Record::Quarantined {
            id,
            deck_hash: key.deck_hash,
            version_tag: key.version.tag().to_string(),
            code_rev: key.code_rev.to_string(),
            n_ranks: key.n_ranks as u32,
            seed: key.seed,
            message: message.to_string(),
        }
    }

    /// A `Reinstated` record for a key.
    pub fn reinstated(key: &CacheKey) -> Self {
        Record::Reinstated {
            deck_hash: key.deck_hash,
            version_tag: key.version.tag().to_string(),
            code_rev: key.code_rev.to_string(),
            n_ranks: key.n_ranks as u32,
            seed: key.seed,
        }
    }

    fn kind(&self) -> u8 {
        match self {
            Record::Boot => 0,
            Record::Submitted { .. } => 1,
            Record::Started { .. } => 2,
            Record::Done { .. } => 3,
            Record::Failed { .. } => 4,
            Record::Cancelled { .. } => 5,
            Record::CacheInsert { .. } => 6,
            Record::Evicted { .. } => 7,
            Record::Quarantined { .. } => 8,
            Record::Reinstated { .. } => 9,
        }
    }
}

// ---------------------------------------------------------------------------
// Payload (de)serialization — bounded before any allocation.
// ---------------------------------------------------------------------------

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn w_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn w_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn w_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_STR_LEN);
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a payload slice; every read is bounds-checked so a
/// corrupt record fails decoding cleanly instead of panicking.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("record truncated while reading {what}"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn i32(&mut self, what: &str) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }
    fn str(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        if len > MAX_STR_LEN {
            // Bounded before any allocation.
            return Err(format!("{what} length {len} exceeds {MAX_STR_LEN}"));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }
    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            // A record is exactly its declared content.
            Err(format!("{} trailing byte(s) after record body", self.buf.len() - self.pos))
        }
    }
}

fn encode_payload(epoch: u64, rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    w_u64(&mut out, epoch);
    out.push(rec.kind());
    match rec {
        Record::Boot => {}
        Record::Submitted {
            id,
            tenant,
            version_tag,
            n_ranks,
            seed,
            priority,
            deck_text,
        } => {
            w_u64(&mut out, *id);
            w_str(&mut out, tenant);
            w_str(&mut out, version_tag);
            w_u32(&mut out, *n_ranks);
            w_u64(&mut out, *seed);
            w_i32(&mut out, *priority);
            w_str(&mut out, deck_text);
        }
        Record::Started { id } => w_u64(&mut out, *id),
        Record::Done { id, cached } => {
            w_u64(&mut out, *id);
            out.push(u8::from(*cached));
        }
        Record::Failed { id, message } | Record::Cancelled { id, message } => {
            w_u64(&mut out, *id);
            w_str(&mut out, message);
        }
        Record::CacheInsert {
            deck_hash,
            version_tag,
            code_rev,
            n_ranks,
            seed,
            report,
        } => {
            w_u64(&mut out, *deck_hash);
            w_str(&mut out, version_tag);
            w_str(&mut out, code_rev);
            w_u32(&mut out, *n_ranks);
            w_u64(&mut out, *seed);
            w_str(&mut out, &report.version_tag);
            w_u32(&mut out, report.ranks.len() as u32);
            for r in &report.ranks {
                w_u32(&mut out, r.rank);
                w_u32(&mut out, r.n_ranks);
                w_u64(&mut out, r.steps);
                w_u64(&mut out, r.state_hash);
                w_f64(&mut out, r.wall_us);
                w_f64(&mut out, r.mpi_us);
                w_f64(&mut out, r.compute_us);
                w_u64(&mut out, r.kernel_launches);
                w_u64(&mut out, r.host_tiles);
                w_f64(&mut out, r.kernel_bytes);
                w_f64(&mut out, r.time);
            }
        }
        Record::Evicted {
            deck_hash,
            version_tag,
            code_rev,
            n_ranks,
            seed,
        }
        | Record::Reinstated {
            deck_hash,
            version_tag,
            code_rev,
            n_ranks,
            seed,
        } => {
            w_u64(&mut out, *deck_hash);
            w_str(&mut out, version_tag);
            w_str(&mut out, code_rev);
            w_u32(&mut out, *n_ranks);
            w_u64(&mut out, *seed);
        }
        Record::Quarantined {
            id,
            deck_hash,
            version_tag,
            code_rev,
            n_ranks,
            seed,
            message,
        } => {
            w_u64(&mut out, *id);
            w_u64(&mut out, *deck_hash);
            w_str(&mut out, version_tag);
            w_str(&mut out, code_rev);
            w_u32(&mut out, *n_ranks);
            w_u64(&mut out, *seed);
            w_str(&mut out, message);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<(u64, Record), String> {
    let mut c = Cur { buf: payload, pos: 0 };
    let epoch = c.u64("epoch")?;
    let kind = c.u8("record kind")?;
    let rec = match kind {
        0 => Record::Boot,
        1 => Record::Submitted {
            id: c.u64("id")?,
            tenant: c.str("tenant")?,
            version_tag: c.str("version tag")?,
            n_ranks: c.u32("n_ranks")?,
            seed: c.u64("seed")?,
            priority: c.i32("priority")?,
            deck_text: c.str("deck text")?,
        },
        2 => Record::Started { id: c.u64("id")? },
        3 => Record::Done {
            id: c.u64("id")?,
            cached: c.u8("cached flag")? != 0,
        },
        4 => Record::Failed {
            id: c.u64("id")?,
            message: c.str("message")?,
        },
        5 => Record::Cancelled {
            id: c.u64("id")?,
            message: c.str("message")?,
        },
        6 => {
            let deck_hash = c.u64("deck hash")?;
            let version_tag = c.str("version tag")?;
            let code_rev = c.str("code rev")?;
            let n_ranks = c.u32("n_ranks")?;
            let seed = c.u64("seed")?;
            let report_version = c.str("report version tag")?;
            let nr = c.u32("rank count")? as usize;
            if nr > MAX_REPORT_RANKS {
                return Err(format!("rank count {nr} exceeds {MAX_REPORT_RANKS}"));
            }
            // Structural bound: each rank core is a fixed 76 bytes; a
            // corrupt count cannot oversize the Vec beyond the already
            // length-capped payload.
            if nr * 76 > payload.len() {
                return Err(format!("rank count {nr} exceeds record size"));
            }
            let mut ranks = Vec::with_capacity(nr);
            for _ in 0..nr {
                ranks.push(PersistedRank {
                    rank: c.u32("rank")?,
                    n_ranks: c.u32("rank world size")?,
                    steps: c.u64("steps")?,
                    state_hash: c.u64("state hash")?,
                    wall_us: c.f64("wall_us")?,
                    mpi_us: c.f64("mpi_us")?,
                    compute_us: c.f64("compute_us")?,
                    kernel_launches: c.u64("kernel launches")?,
                    host_tiles: c.u64("host tiles")?,
                    kernel_bytes: c.f64("kernel bytes")?,
                    time: c.f64("time")?,
                });
            }
            Record::CacheInsert {
                deck_hash,
                version_tag,
                code_rev,
                n_ranks,
                seed,
                report: PersistedReport {
                    version_tag: report_version,
                    ranks,
                },
            }
        }
        7 => Record::Evicted {
            deck_hash: c.u64("deck hash")?,
            version_tag: c.str("version tag")?,
            code_rev: c.str("code rev")?,
            n_ranks: c.u32("n_ranks")?,
            seed: c.u64("seed")?,
        },
        8 => Record::Quarantined {
            id: c.u64("id")?,
            deck_hash: c.u64("deck hash")?,
            version_tag: c.str("version tag")?,
            code_rev: c.str("code rev")?,
            n_ranks: c.u32("n_ranks")?,
            seed: c.u64("seed")?,
            message: c.str("message")?,
        },
        9 => Record::Reinstated {
            deck_hash: c.u64("deck hash")?,
            version_tag: c.str("version tag")?,
            code_rev: c.str("code rev")?,
            n_ranks: c.u32("n_ranks")?,
            seed: c.u64("seed")?,
        },
        other => return Err(format!("unknown record kind {other}")),
    };
    c.done()?;
    Ok((epoch, rec))
}

/// Reconstruct the [`JobSpec`] a `Submitted` record describes. Fails if
/// the deck text no longer parses (config format drift across builds).
pub fn spec_of_submitted(rec: &Record) -> Result<JobSpec, String> {
    let Record::Submitted {
        tenant,
        version_tag,
        n_ranks,
        seed,
        priority,
        deck_text,
        ..
    } = rec
    else {
        return Err("not a Submitted record".into());
    };
    let deck = Deck::parse(deck_text).map_err(|e| e.to_string())?;
    Ok(JobSpec::new(deck)
        .tenant(tenant)
        .version(crate::wire::parse_version(version_tag)?)
        .ranks(*n_ranks as usize)
        .seed(*seed)
        .priority(*priority))
}

// ---------------------------------------------------------------------------
// Replay.
// ---------------------------------------------------------------------------

/// What replaying a journal found.
#[derive(Debug)]
pub struct Replay {
    /// Every valid record, file order, with its epoch stamp.
    pub records: Vec<(u64, Record)>,
    /// Why replay stopped early, if it did (torn tail / corruption).
    pub torn: Option<String>,
    /// Bytes dropped from the tail (0 when the journal was clean).
    pub truncated_bytes: u64,
    /// File offset of the end of the valid prefix.
    valid_end: u64,
}

/// Replay a journal file without modifying it. A missing file replays
/// as empty. A file that is not a journal (bad magic / unsupported
/// version) is an error — it is somebody else's data, not a torn tail,
/// and must not be silently truncated away.
pub fn replay(path: &Path) -> io::Result<Replay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Replay {
                records: Vec::new(),
                torn: None,
                truncated_bytes: 0,
                valid_end: 0,
            })
        }
        Err(e) => return Err(e),
    };
    if bytes.is_empty() {
        return Ok(Replay {
            records: Vec::new(),
            torn: None,
            truncated_bytes: 0,
            valid_end: 0,
        });
    }
    if bytes.len() < HEADER_LEN as usize {
        // Died while writing the very first header: nothing was ever
        // acknowledged, so an empty journal is the truthful state.
        return Ok(Replay {
            records: Vec::new(),
            torn: Some("torn file header".into()),
            truncated_bytes: bytes.len() as u64,
            valid_end: 0,
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a mas-serve journal (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported journal format version {version}"),
        ));
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = None;
    while pos < bytes.len() {
        let remain = bytes.len() - pos;
        if remain < 4 {
            torn = Some(format!("torn frame length at offset {pos}"));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len > MAX_RECORD_LEN {
            torn = Some(format!("oversized record ({len} bytes) at offset {pos}"));
            break;
        }
        if remain < 4 + len + 4 {
            torn = Some(format!("torn record body at offset {pos}"));
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored_crc =
            u32::from_le_bytes(bytes[pos + 4 + len..pos + 8 + len].try_into().unwrap());
        if stored_crc != crc32(payload) {
            torn = Some(format!("checksum mismatch at offset {pos}"));
            break;
        }
        match decode_payload(payload) {
            Ok((epoch, rec)) => records.push((epoch, rec)),
            Err(e) => {
                torn = Some(format!("undecodable record at offset {pos}: {e}"));
                break;
            }
        }
        pos += 8 + len;
    }
    let valid_end = pos as u64;
    Ok(Replay {
        records,
        torn,
        truncated_bytes: bytes.len() as u64 - valid_end,
        valid_end,
    })
}

// ---------------------------------------------------------------------------
// The append handle.
// ---------------------------------------------------------------------------

/// An open journal: append records, compact in place. One per server.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records appended since open/compaction (the compaction trigger).
    appended: usize,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("appended", &self.appended)
            .finish()
    }
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying it first. A
    /// torn tail is truncated off the file here, so the next append
    /// lands at the end of the valid prefix. Returns the handle and the
    /// replayed state.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Replay)> {
        let path = path.as_ref().to_path_buf();
        let rep = replay(&path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if rep.valid_end == 0 {
            // Fresh (or fully-torn) journal: (re)write the header.
            file.set_len(0)?;
            file.write_all(MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
            file.sync_all()?;
        } else if rep.truncated_bytes > 0 {
            // Drop the torn tail; everything before it stays durable.
            file.set_len(rep.valid_end)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                file,
                path,
                appended: 0,
            },
            rep,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended since open or the last compaction.
    pub fn appended_since_compaction(&self) -> usize {
        self.appended
    }

    /// Append one record durably: framed, CRC'd, flushed, fsync'd. When
    /// this returns `Ok`, the record survives SIGKILL.
    pub fn append(&mut self, epoch: u64, rec: &Record) -> io::Result<()> {
        let payload = encode_payload(epoch, rec);
        assert!(payload.len() <= MAX_RECORD_LEN, "record exceeds frame cap");
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.appended += 1;
        Ok(())
    }

    /// Atomically replace the journal with a snapshot of `records`
    /// (each stamped with `epoch`): write header + records to a
    /// `.compact` sibling, fsync, rename over the live file, reopen for
    /// append. A crash at any point leaves either the old or the new
    /// journal fully intact.
    pub fn compact(&mut self, epoch: u64, records: &[Record]) -> io::Result<()> {
        let tmp = {
            let mut os = self.path.as_os_str().to_os_string();
            os.push(".compact");
            PathBuf::from(os)
        };
        {
            let mut f = File::create(&tmp)?;
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            for rec in records {
                let payload = encode_payload(epoch, rec);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&payload);
                out.extend_from_slice(&crc32(&payload).to_le_bytes());
            }
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable (best-effort: not every
        // filesystem supports directory fsync).
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.appended = 0;
        Ok(())
    }
}

/// Verify a journal end-to-end without building any server state: walk
/// every frame, check every CRC. Returns (records, torn-tail note).
/// Used by tests and operator tooling.
pub fn verify(path: &Path) -> io::Result<(usize, Option<String>)> {
    let rep = replay(path)?;
    Ok((rep.records.len(), rep.torn))
}

/// Streaming CRC of a whole journal file (a cheap content fingerprint
/// for "did compaction preserve the state" checks in tests).
pub fn file_crc(path: &Path) -> io::Result<u32> {
    let mut f = File::open(path)?;
    let mut crc = Crc32::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            return Ok(crc.value());
        }
        crc.update(&buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mas_serve_journal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Boot,
            Record::Submitted {
                id: 1,
                tenant: "helio".into(),
                version_tag: "AD2XU".into(),
                n_ranks: 2,
                seed: 42,
                priority: -3,
                deck_text: "&time\n  n_steps = 4\n/\n".into(),
            },
            Record::Started { id: 1 },
            Record::CacheInsert {
                deck_hash: 0xdead_beef,
                version_tag: "AD2XU".into(),
                code_rev: CODE_REV.into(),
                n_ranks: 2,
                seed: 42,
                report: PersistedReport {
                    version_tag: "AD2XU".into(),
                    ranks: vec![PersistedRank {
                        rank: 0,
                        n_ranks: 2,
                        steps: 4,
                        state_hash: 0x1234_5678_9abc_def0,
                        wall_us: 1.5,
                        mpi_us: 0.5,
                        compute_us: 1.0,
                        kernel_launches: 7,
                        host_tiles: 9,
                        kernel_bytes: 1e6,
                        time: 0.25,
                    }],
                },
            },
            Record::Done { id: 1, cached: false },
            Record::Failed {
                id: 2,
                message: "rank 1: boom\nat step 3".into(),
            },
            Record::Cancelled {
                id: 3,
                message: "operator".into(),
            },
            Record::Evicted {
                deck_hash: 0xdead_beef,
                version_tag: "AD2XU".into(),
                code_rev: CODE_REV.into(),
                n_ranks: 2,
                seed: 42,
            },
            Record::Quarantined {
                id: 4,
                deck_hash: 0xfeed_f00d,
                version_tag: "A".into(),
                code_rev: CODE_REV.into(),
                n_ranks: 1,
                seed: 7,
                message: "worker panic: deck crashed every attempt".into(),
            },
            Record::Reinstated {
                deck_hash: 0xfeed_f00d,
                version_tag: "A".into(),
                code_rev: CODE_REV.into(),
                n_ranks: 1,
                seed: 7,
            },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let p = temp_journal("rt.log");
        let recs = sample_records();
        {
            let (mut j, rep) = Journal::open(&p).unwrap();
            assert!(rep.records.is_empty());
            for (i, r) in recs.iter().enumerate() {
                j.append(i as u64, r).unwrap();
            }
            assert_eq!(j.appended_since_compaction(), recs.len());
        }
        let rep = replay(&p).unwrap();
        assert!(rep.torn.is_none());
        assert_eq!(rep.truncated_bytes, 0);
        assert_eq!(rep.records.len(), recs.len());
        for (i, ((epoch, got), want)) in rep.records.iter().zip(&recs).enumerate() {
            assert_eq!(*epoch, i as u64);
            assert_eq!(got, want, "record {i}");
        }
    }

    #[test]
    fn every_flipped_byte_stops_replay_at_or_before_the_flip() {
        let p = temp_journal("flip.log");
        let recs = sample_records();
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            for r in &recs {
                j.append(7, r).unwrap();
            }
        }
        let good = std::fs::read(&p).unwrap();
        let clean = replay(&p).unwrap().records;
        for idx in HEADER_LEN as usize..good.len() {
            let mut corrupt = good.clone();
            corrupt[idx] ^= 0x20;
            let pc = temp_journal("flip_c.log");
            std::fs::write(&pc, &corrupt).unwrap();
            let rep = replay(&pc).unwrap();
            // Replay never panics, never returns more records than the
            // clean journal, and every surviving record is byte-exact
            // one of the originals (a prefix, possibly followed by
            // records after a flipped frame-length that happened to
            // stay valid — CRC framing makes that astronomically
            // unlikely, so we assert the prefix property).
            assert!(rep.records.len() <= clean.len(), "flip at {idx}");
            for (a, b) in rep.records.iter().zip(&clean) {
                assert_eq!(a, b, "flip at {idx} resurrected a corrupted record");
            }
            // A flip strictly inside a frame must sacrifice that frame.
            assert!(
                rep.records.len() < clean.len(),
                "flip at {idx} was not detected"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_keeps_the_valid_prefix() {
        let p = temp_journal("trunc.log");
        let recs = sample_records();
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            for r in &recs {
                j.append(1, r).unwrap();
            }
        }
        let good = std::fs::read(&p).unwrap();
        let clean = replay(&p).unwrap().records;
        for cut in 0..good.len() {
            let pt = temp_journal("trunc_c.log");
            std::fs::write(&pt, &good[..cut]).unwrap();
            let rep = replay(&pt).unwrap();
            assert!(rep.records.len() <= clean.len());
            for (a, b) in rep.records.iter().zip(&clean) {
                assert_eq!(a, b, "cut at {cut}");
            }
            if cut < good.len() {
                assert_eq!(
                    rep.truncated_bytes as usize,
                    cut - rep.valid_end as usize,
                    "cut at {cut}: truncation accounting"
                );
            }
            // Re-opening truncates the torn tail and the journal is
            // appendable again.
            let (mut j, rep2) = Journal::open(&pt).unwrap();
            assert_eq!(rep2.records.len(), rep.records.len());
            j.append(2, &Record::Boot).unwrap();
            let rep3 = replay(&pt).unwrap();
            assert!(rep3.torn.is_none(), "cut at {cut}: {:?}", rep3.torn);
            assert_eq!(rep3.records.len(), rep.records.len() + 1);
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_without_allocation() {
        let p = temp_journal("big.log");
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            j.append(1, &Record::Boot).unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        // Claim a ~4 GiB record in the frame length.
        let at = HEADER_LEN as usize;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let rep = replay(&p).unwrap();
        assert!(rep.records.is_empty());
        assert!(rep.torn.as_deref().unwrap().contains("oversized"), "{:?}", rep.torn);
    }

    #[test]
    fn non_journal_files_error_instead_of_truncating() {
        let p = temp_journal("notajournal.log");
        std::fs::write(&p, b"this is somebody else's data, not a journal").unwrap();
        let err = replay(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(Journal::open(&p).is_err(), "open must refuse to wipe it");
        // The file is untouched.
        assert_eq!(
            std::fs::read(&p).unwrap(),
            b"this is somebody else's data, not a journal"
        );
    }

    #[test]
    fn compaction_preserves_state_and_resets_the_trigger() {
        let p = temp_journal("compact.log");
        let recs = sample_records();
        let (mut j, _) = Journal::open(&p).unwrap();
        for r in &recs {
            j.append(1, r).unwrap();
        }
        let snapshot = vec![recs[1].clone(), recs[3].clone()];
        j.compact(2, &snapshot).unwrap();
        assert_eq!(j.appended_since_compaction(), 0);
        // The compacted journal holds exactly the snapshot...
        let rep = replay(&p).unwrap();
        assert!(rep.torn.is_none());
        assert_eq!(
            rep.records,
            snapshot.iter().map(|r| (2, r.clone())).collect::<Vec<_>>()
        );
        // ...and stays appendable.
        j.append(2, &Record::Started { id: 1 }).unwrap();
        let rep = replay(&p).unwrap();
        assert_eq!(rep.records.len(), 3);
        // No temp litter.
        assert!(!p.with_extension("log.compact").exists());
    }

    #[test]
    fn spec_roundtrips_through_a_submitted_record() {
        let deck = mas_config::Deck::preset_quickstart();
        let spec = JobSpec::new(deck)
            .tenant("helio")
            .version(stdpar::CodeVersion::D2xad)
            .ranks(4)
            .seed(99)
            .priority(5);
        let rec = Record::submitted(11, &spec);
        let back = spec_of_submitted(&rec).unwrap();
        assert_eq!(back.tenant, "helio");
        assert_eq!(back.version, stdpar::CodeVersion::D2xad);
        assert_eq!(back.n_ranks, 4);
        assert_eq!(back.seed, 99);
        assert_eq!(back.priority, 5);
        assert_eq!(
            back.deck.content_hash(),
            spec.deck.content_hash(),
            "deck survives by content"
        );
    }

    #[test]
    fn quarantine_records_roundtrip_through_constructors() {
        let key = CacheKey {
            deck_hash: 0xabc,
            version: stdpar::CodeVersion::Ad,
            code_rev: CODE_REV,
            n_ranks: 3,
            seed: 11,
        };
        let q = Record::quarantined(9, &key, "panicked 3/3 attempts");
        let r = Record::reinstated(&key);
        let p = temp_journal("quar.log");
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            j.append(1, &q).unwrap();
            j.append(1, &r).unwrap();
        }
        let rep = replay(&p).unwrap();
        assert!(rep.torn.is_none());
        assert_eq!(rep.records, vec![(1, q), (1, r)]);
    }

    #[test]
    fn old_journal_layout_still_replays() {
        // A PR-8 era journal knows only kinds 0–7. Re-encode a
        // representative record with the old layout written out by hand
        // (independent of today's encoder) and require replay to accept
        // it — the on-disk layout of pre-existing kinds must never
        // drift under new record types.
        let mut payload = Vec::new();
        w_u64(&mut payload, 3); // epoch
        payload.push(4u8); // kind: Failed
        w_u64(&mut payload, 17); // id
        w_str(&mut payload, "rank 0: boom");
        let p = temp_journal("old.log");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let rep = replay(&p).unwrap();
        assert!(rep.torn.is_none());
        assert_eq!(
            rep.records,
            vec![(
                3,
                Record::Failed {
                    id: 17,
                    message: "rank 0: boom".into()
                }
            )]
        );
        // And a record kind from some *future* format stops replay
        // cleanly at the valid prefix instead of panicking.
        let mut future = Vec::new();
        w_u64(&mut future, 3);
        future.push(10u8);
        bytes.extend_from_slice(&(future.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&future);
        bytes.extend_from_slice(&crc32(&future).to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let rep = replay(&p).unwrap();
        assert_eq!(rep.records.len(), 1);
        assert!(rep.torn.as_deref().unwrap().contains("unknown record kind 10"));
    }

    #[test]
    fn persisted_report_keeps_the_durable_core() {
        let rec = sample_records().remove(3);
        let Record::CacheInsert { report, .. } = rec else {
            panic!()
        };
        let full = report.to_report().unwrap();
        assert_eq!(full.ranks.len(), 1);
        assert_eq!(full.ranks[0].state_hash, 0x1234_5678_9abc_def0);
        assert_eq!(full.ranks[0].steps, 4);
        assert_eq!(full.ranks[0].version, stdpar::CodeVersion::Ad2xu);
        let back = PersistedReport::from_report(&full);
        assert_eq!(back, report, "persist → rehydrate → persist is stable");
    }
}
