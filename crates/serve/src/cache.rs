//! Content-addressed result cache, bounded by entry count and TTL.
//!
//! A run is a pure function of its inputs: the deck (by content), the
//! code version executed, the rank layout and the seed — the physics is
//! deterministic and bit-exact across repeats (the repo's standing
//! invariant). So identical resubmissions need not run: the cache
//! returns the completed [`MultiRankReport`] (state hashes included)
//! instantly, leasing zero devices and executing zero steps.
//!
//! The crate version is part of the key: a rebuilt server with changed
//! code must never serve results computed by the old code.
//!
//! The cache is **bounded**: at most `max_entries` results, evicting the
//! least-recently-used entry first, plus an optional TTL after which an
//! entry expires regardless of use. Evictions are reported back to the
//! caller (the server journals them as `Evicted` records so the
//! persisted cache stays bounded too). Entries rehydrated from the
//! journal at recovery get a fresh TTL clock — the journal stores no
//! wall-clock times, by design (deterministic replay).

use crate::job::JobSpec;
use mas_mhd::MultiRankReport;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stdpar::CodeVersion;

/// What identifies a run's result. Two submissions with equal keys are
/// guaranteed (by determinism) to produce bit-identical reports.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a hash of the deck's canonical text
    /// ([`mas_config::Deck::content_hash`]) — formatting and comment
    /// differences don't defeat the cache; any effective-key change does.
    pub deck_hash: u64,
    /// Code version executed.
    pub version: CodeVersion,
    /// The solver build that produced the result.
    pub code_rev: &'static str,
    /// Rank layout (one rank per device).
    pub n_ranks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CacheKey {
    /// The key for a submission.
    pub fn for_spec(spec: &JobSpec) -> Self {
        Self {
            deck_hash: spec.deck.content_hash(),
            version: spec.version,
            code_rev: env!("CARGO_PKG_VERSION"),
            n_ranks: spec.n_ranks,
            seed: spec.seed,
        }
    }
}

/// One cached result plus the bookkeeping eviction needs.
struct Entry {
    report: Arc<MultiRankReport>,
    inserted: Instant,
    /// Last lookup hit (or insertion time) — the LRU ordering key;
    /// `seq` breaks ties deterministically when Instants collide.
    last_used: Instant,
    seq: u64,
}

/// The cache itself: completed reports by key, hit/miss/eviction
/// counters, and the bounding policy. Not internally synchronised — it
/// lives inside the server's scheduler lock.
pub struct ResultCache {
    map: HashMap<CacheKey, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    max_entries: usize,
    ttl: Option<Duration>,
    next_seq: u64,
}

impl Default for ResultCache {
    /// An effectively unbounded cache (no TTL) — the configuration the
    /// pre-eviction tests and embedders without a policy get.
    fn default() -> Self {
        Self::new(usize::MAX, None)
    }
}

impl ResultCache {
    /// A cache bounded to `max_entries` results with an optional TTL.
    /// `max_entries` is clamped to at least 1 (a zero-entry cache would
    /// make every insert evict itself — meaningless).
    pub fn new(max_entries: usize, ttl: Option<Duration>) -> Self {
        Self {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            max_entries: max_entries.max(1),
            ttl,
            next_seq: 0,
        }
    }

    /// Look a key up, counting the hit or miss and refreshing the LRU
    /// position on a hit. Callers should [`ResultCache::sweep`] first so
    /// an expired entry reads as a miss, not a stale hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<MultiRankReport>> {
        let seq = self.bump_seq();
        match self.map.get_mut(key) {
            Some(e) => {
                self.hits += 1;
                e.last_used = Instant::now();
                e.seq = seq;
                Some(e.report.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Lookup that counts a hit when present but **not** a miss when
    /// absent — the claim-time probe workers use to collapse a recovered
    /// duplicate submission into its already-cached result without
    /// distorting the miss counter of every ordinary run.
    pub fn claim_hit(&mut self, key: &CacheKey) -> Option<Arc<MultiRankReport>> {
        let seq = self.bump_seq();
        let e = self.map.get_mut(key)?;
        self.hits += 1;
        e.last_used = Instant::now();
        e.seq = seq;
        Some(e.report.clone())
    }

    /// Peek without touching any counter or the LRU order (recovery uses
    /// this to rehydrate `Done` jobs' results).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<MultiRankReport>> {
        self.map.get(key).map(|e| e.report.clone())
    }

    /// Store a completed report, then enforce the entry bound. Returns
    /// the keys evicted to make room (LRU-first) — the caller journals
    /// them. The freshly inserted key is never its own victim.
    pub fn insert(&mut self, key: CacheKey, report: Arc<MultiRankReport>) -> Vec<CacheKey> {
        let now = Instant::now();
        let seq = self.bump_seq();
        self.map.insert(
            key.clone(),
            Entry {
                report,
                inserted: now,
                last_used: now,
                seq,
            },
        );
        let mut evicted = Vec::new();
        while self.map.len() > self.max_entries {
            // LRU victim: oldest (last_used, seq), never the key that
            // just went in (it has the newest seq by construction).
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| (e.last_used, e.seq))
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            self.map.remove(&victim);
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Expire every entry older than the TTL (as of `now`), returning
    /// the expired keys for journaling. No-op without a TTL.
    pub fn sweep(&mut self, now: Instant) -> Vec<CacheKey> {
        let Some(ttl) = self.ttl else {
            return Vec::new();
        };
        let expired: Vec<CacheKey> = self
            .map
            .iter()
            .filter(|(_, e)| now.duration_since(e.inserted) >= ttl)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &expired {
            self.map.remove(k);
            self.evictions += 1;
        }
        expired
    }

    /// Remove one entry without counting an eviction (journal replay of
    /// an `Evicted` record — the eviction was already counted by the
    /// incarnation that performed it). Returns whether it was present.
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        self.map.remove(key).is_some()
    }

    /// Iterate the live entries (compaction snapshots the cache with
    /// this).
    pub fn entries(&self) -> impl Iterator<Item = (&CacheKey, &Arc<MultiRankReport>)> {
        self.map.iter().map(|(k, e)| (k, &e.report))
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted (capacity or TTL) since this cache was built.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn bump_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_config::Deck;

    fn spec() -> JobSpec {
        JobSpec::new(Deck::preset_quickstart()).ranks(2).seed(7)
    }

    fn empty_report() -> Arc<MultiRankReport> {
        Arc::new(MultiRankReport { ranks: Vec::new() })
    }

    #[test]
    fn key_tracks_every_identity_component() {
        let base = CacheKey::for_spec(&spec());
        assert_eq!(base, CacheKey::for_spec(&spec()), "stable");

        let mut other = spec();
        other.deck.time.n_steps += 1;
        assert_ne!(base, CacheKey::for_spec(&other), "deck content");

        assert_ne!(
            base,
            CacheKey::for_spec(&spec().version(CodeVersion::D2xad)),
            "code version"
        );
        assert_ne!(base, CacheKey::for_spec(&spec().ranks(4)), "rank layout");
        assert_ne!(base, CacheKey::for_spec(&spec().seed(8)), "seed");
        // Scheduling metadata is NOT identity: same physics, same result.
        assert_eq!(
            base,
            CacheKey::for_spec(&spec().priority(9).tenant("other")),
            "priority/tenant must not defeat the cache"
        );
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = ResultCache::default();
        let key = CacheKey::for_spec(&spec());
        assert!(c.lookup(&key).is_none());
        let evicted = c.insert(key.clone(), empty_report());
        assert!(evicted.is_empty(), "unbounded default never evicts");
        assert!(c.lookup(&key).is_some());
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn claim_hit_never_counts_a_miss() {
        let mut c = ResultCache::default();
        let key = CacheKey::for_spec(&spec());
        assert!(c.claim_hit(&key).is_none());
        assert_eq!((c.hits(), c.misses()), (0, 0), "absent probe is free");
        let _ = c.insert(key.clone(), empty_report());
        assert!(c.claim_hit(&key).is_some());
        assert_eq!((c.hits(), c.misses()), (1, 0));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        let k1 = CacheKey::for_spec(&spec().seed(1));
        let k2 = CacheKey::for_spec(&spec().seed(2));
        let k3 = CacheKey::for_spec(&spec().seed(3));
        assert!(c.insert(k1.clone(), empty_report()).is_empty());
        assert!(c.insert(k2.clone(), empty_report()).is_empty());
        // Touch k1 so k2 becomes the LRU victim.
        assert!(c.lookup(&k1).is_some());
        let evicted = c.insert(k3.clone(), empty_report());
        assert_eq!(evicted, vec![k2.clone()]);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&k1).is_some());
        assert!(c.peek(&k2).is_none());
        assert!(c.peek(&k3).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn ttl_sweep_expires_old_entries() {
        let mut c = ResultCache::new(8, Some(Duration::ZERO));
        let key = CacheKey::for_spec(&spec());
        let _ = c.insert(key.clone(), empty_report());
        std::thread::sleep(Duration::from_millis(2));
        let expired = c.sweep(Instant::now());
        assert_eq!(expired, vec![key.clone()]);
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 1);
        // Without a TTL, sweep is a no-op.
        let mut c = ResultCache::new(8, None);
        let _ = c.insert(key, empty_report());
        assert!(c.sweep(Instant::now()).is_empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_does_not_count_as_eviction() {
        let mut c = ResultCache::default();
        let key = CacheKey::for_spec(&spec());
        let _ = c.insert(key.clone(), empty_report());
        assert!(c.remove(&key));
        assert!(!c.remove(&key));
        assert_eq!(c.evictions(), 0);
    }
}
