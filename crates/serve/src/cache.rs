//! Content-addressed result cache.
//!
//! A run is a pure function of its inputs: the deck (by content), the
//! code version executed, the rank layout and the seed — the physics is
//! deterministic and bit-exact across repeats (the repo's standing
//! invariant). So identical resubmissions need not run: the cache
//! returns the completed [`MultiRankReport`] (state hashes included)
//! instantly, leasing zero devices and executing zero steps.
//!
//! The crate version is part of the key: a rebuilt server with changed
//! code must never serve results computed by the old code.

use crate::job::JobSpec;
use mas_mhd::MultiRankReport;
use std::collections::HashMap;
use std::sync::Arc;
use stdpar::CodeVersion;

/// What identifies a run's result. Two submissions with equal keys are
/// guaranteed (by determinism) to produce bit-identical reports.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a hash of the deck's canonical text
    /// ([`mas_config::Deck::content_hash`]) — formatting and comment
    /// differences don't defeat the cache; any effective-key change does.
    pub deck_hash: u64,
    /// Code version executed.
    pub version: CodeVersion,
    /// The solver build that produced the result.
    pub code_rev: &'static str,
    /// Rank layout (one rank per device).
    pub n_ranks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CacheKey {
    /// The key for a submission.
    pub fn for_spec(spec: &JobSpec) -> Self {
        Self {
            deck_hash: spec.deck.content_hash(),
            version: spec.version,
            code_rev: env!("CARGO_PKG_VERSION"),
            n_ranks: spec.n_ranks,
            seed: spec.seed,
        }
    }
}

/// The cache itself: completed reports by key, plus hit/miss counters.
/// Not internally synchronised — it lives inside the server's scheduler
/// lock.
#[derive(Default)]
pub struct ResultCache {
    map: HashMap<CacheKey, Arc<MultiRankReport>>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// Look a key up, counting the hit or miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<MultiRankReport>> {
        match self.map.get(key) {
            Some(rep) => {
                self.hits += 1;
                Some(rep.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a completed report.
    pub fn insert(&mut self, key: CacheKey, report: Arc<MultiRankReport>) {
        self.map.insert(key, report);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mas_config::Deck;

    fn spec() -> JobSpec {
        JobSpec::new(Deck::preset_quickstart()).ranks(2).seed(7)
    }

    #[test]
    fn key_tracks_every_identity_component() {
        let base = CacheKey::for_spec(&spec());
        assert_eq!(base, CacheKey::for_spec(&spec()), "stable");

        let mut other = spec();
        other.deck.time.n_steps += 1;
        assert_ne!(base, CacheKey::for_spec(&other), "deck content");

        assert_ne!(
            base,
            CacheKey::for_spec(&spec().version(CodeVersion::D2xad)),
            "code version"
        );
        assert_ne!(base, CacheKey::for_spec(&spec().ranks(4)), "rank layout");
        assert_ne!(base, CacheKey::for_spec(&spec().seed(8)), "seed");
        // Scheduling metadata is NOT identity: same physics, same result.
        assert_eq!(
            base,
            CacheKey::for_spec(&spec().priority(9).tenant("other")),
            "priority/tenant must not defeat the cache"
        );
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = ResultCache::default();
        let key = CacheKey::for_spec(&spec());
        assert!(c.lookup(&key).is_none());
        c.insert(
            key.clone(),
            Arc::new(MultiRankReport { ranks: Vec::new() }),
        );
        assert!(c.lookup(&key).is_some());
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
