//! Staggered field locations on the Yee-style spherical mesh.
//!
//! MAS stores its MHD state on a staggered arrangement:
//!
//! * scalars (ρ, T, p) at **cell centers**;
//! * velocity and magnetic-field components at **face centers** normal to
//!   their component direction (`v_r`, `B_r` on r-faces, …);
//! * electric field / current density components along **edges**
//!   (`E_r` along r-edges, i.e. centered in r, staggered in θ and φ);
//! * curvilinear corner quantities at **vertices**.
//!
//! This module defines the [`Stagger`] enum plus the logical dimensions of
//! each staggering given the cell counts of the grid.

/// Staggered location of a field on the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stagger {
    /// Cell centers: dims `(nr, nt, np)`.
    CellCenter,
    /// Centers of faces normal to r: dims `(nr+1, nt, np)`.
    FaceR,
    /// Centers of faces normal to θ: dims `(nr, nt+1, np)`.
    FaceT,
    /// Centers of faces normal to φ: dims `(nr, nt, np+1)`.
    FaceP,
    /// Edges directed along r (staggered in θ and φ): dims `(nr, nt+1, np+1)`.
    EdgeR,
    /// Edges directed along θ: dims `(nr+1, nt, np+1)`.
    EdgeT,
    /// Edges directed along φ: dims `(nr+1, nt+1, np)`.
    EdgeP,
    /// Cell vertices: dims `(nr+1, nt+1, np+1)`.
    Vertex,
}

impl Stagger {
    /// All staggerings, for exhaustive tests.
    pub const ALL: [Stagger; 8] = [
        Stagger::CellCenter,
        Stagger::FaceR,
        Stagger::FaceT,
        Stagger::FaceP,
        Stagger::EdgeR,
        Stagger::EdgeT,
        Stagger::EdgeP,
        Stagger::Vertex,
    ];

    /// Logical (ghost-free) dimensions of a field with this staggering on a
    /// grid of `(nr, nt, np)` cells.
    pub fn dims(self, nr: usize, nt: usize, np: usize) -> (usize, usize, usize) {
        let (sr, st, sp) = self.offsets();
        (nr + sr, nt + st, np + sp)
    }

    /// Per-axis size increments relative to the cell-centered dims:
    /// 1 where the location sits on faces/edges of that axis.
    pub fn offsets(self) -> (usize, usize, usize) {
        match self {
            Stagger::CellCenter => (0, 0, 0),
            Stagger::FaceR => (1, 0, 0),
            Stagger::FaceT => (0, 1, 0),
            Stagger::FaceP => (0, 0, 1),
            Stagger::EdgeR => (0, 1, 1),
            Stagger::EdgeT => (1, 0, 1),
            Stagger::EdgeP => (1, 1, 0),
            Stagger::Vertex => (1, 1, 1),
        }
    }

    /// True if the location is staggered (lies on the half mesh) along the
    /// given axis (0 = r, 1 = θ, 2 = φ).
    pub fn on_half_mesh(self, axis: usize) -> bool {
        let o = self.offsets();
        match axis {
            0 => o.0 == 1,
            1 => o.1 == 1,
            2 => o.2 == 1,
            _ => panic!("axis must be 0..3"),
        }
    }

    /// The face staggering normal to `axis`.
    pub fn face(axis: usize) -> Stagger {
        match axis {
            0 => Stagger::FaceR,
            1 => Stagger::FaceT,
            2 => Stagger::FaceP,
            _ => panic!("axis must be 0..3"),
        }
    }

    /// The edge staggering along `axis`.
    pub fn edge(axis: usize) -> Stagger {
        match axis {
            0 => Stagger::EdgeR,
            1 => Stagger::EdgeT,
            2 => Stagger::EdgeP,
            _ => panic!("axis must be 0..3"),
        }
    }

    /// Short name used in profiler kernel labels and output files.
    pub fn short_name(self) -> &'static str {
        match self {
            Stagger::CellCenter => "cc",
            Stagger::FaceR => "fr",
            Stagger::FaceT => "ft",
            Stagger::FaceP => "fp",
            Stagger::EdgeR => "er",
            Stagger::EdgeT => "et",
            Stagger::EdgeP => "ep",
            Stagger::Vertex => "vx",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_offsets() {
        for s in Stagger::ALL {
            let (a, b, c) = s.dims(10, 20, 30);
            let (x, y, z) = s.offsets();
            assert_eq!((a, b, c), (10 + x, 20 + y, 30 + z));
        }
    }

    #[test]
    fn face_and_edge_constructors() {
        assert_eq!(Stagger::face(0), Stagger::FaceR);
        assert_eq!(Stagger::face(2), Stagger::FaceP);
        assert_eq!(Stagger::edge(1), Stagger::EdgeT);
    }

    #[test]
    fn half_mesh_flags() {
        assert!(Stagger::FaceR.on_half_mesh(0));
        assert!(!Stagger::FaceR.on_half_mesh(1));
        assert!(Stagger::EdgeR.on_half_mesh(1));
        assert!(Stagger::EdgeR.on_half_mesh(2));
        assert!(!Stagger::EdgeR.on_half_mesh(0));
        assert!(Stagger::Vertex.on_half_mesh(0));
    }

    #[test]
    fn short_names_unique() {
        let mut names: Vec<&str> = Stagger::ALL.iter().map(|s| s.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
