//! Index spaces: loop bounds over ghost-extended staggered arrays.
//!
//! Every kernel in the solver iterates over a rectangular block of indices
//! of a ghost-extended array. [`IndexSpace3`] names that block once so loop
//! bounds are not re-derived (and mis-derived) at every call site — the Rust
//! analogue of the `do concurrent (k=1:n3, j=1:n2, i=1:n1)` header.

use crate::{Stagger, NGHOST};

/// A rectangular iteration block `[i0..i1) × [j0..j1) × [k0..k1)` over a
/// ghost-extended array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexSpace3 {
    /// First index along axis 1 (inclusive).
    pub i0: usize,
    /// Last index along axis 1 (exclusive).
    pub i1: usize,
    /// First index along axis 2 (inclusive).
    pub j0: usize,
    /// Last index along axis 2 (exclusive).
    pub j1: usize,
    /// First index along axis 3 (inclusive).
    pub k0: usize,
    /// Last index along axis 3 (exclusive).
    pub k1: usize,
}

impl IndexSpace3 {
    /// The full interior of a field with staggering `s` on an
    /// `(nr, nt, np)`-cell grid with the standard ghost width.
    pub fn interior(s: Stagger, nr: usize, nt: usize, np: usize) -> Self {
        let (n1, n2, n3) = s.dims(nr, nt, np);
        let g = NGHOST;
        Self {
            i0: g,
            i1: g + n1,
            j0: g,
            j1: g + n2,
            k0: g,
            k1: g + n3,
        }
    }

    /// Interior block excluding the first and last plane along each axis
    /// where `trim` is 1 — used for updates that must not touch boundary
    /// faces (e.g. the normal-velocity faces on the radial boundaries).
    pub fn interior_trimmed(
        s: Stagger,
        nr: usize,
        nt: usize,
        np: usize,
        trim: (usize, usize, usize),
    ) -> Self {
        let mut b = Self::interior(s, nr, nt, np);
        b.i0 += trim.0;
        b.i1 -= trim.0;
        b.j0 += trim.1;
        b.j1 -= trim.1;
        b.k0 += trim.2;
        b.k1 -= trim.2;
        assert!(b.i0 < b.i1 && b.j0 < b.j1 && b.k0 < b.k1, "over-trimmed block");
        b
    }

    /// Total number of points in the block.
    pub fn len(&self) -> usize {
        (self.i1 - self.i0) * (self.j1 - self.j0) * (self.k1 - self.k0)
    }

    /// True if the block is empty.
    pub fn is_empty(&self) -> bool {
        self.i0 >= self.i1 || self.j0 >= self.j1 || self.k0 >= self.k1
    }

    /// Extent along each axis.
    pub fn extents(&self) -> (usize, usize, usize) {
        (self.i1 - self.i0, self.j1 - self.j0, self.k1 - self.k0)
    }

    /// Serial iteration helper: calls `f(i, j, k)` for every point with `i`
    /// fastest (Fortran / MAS memory order). Execution-model aware code
    /// should go through `stdpar` instead; this is for tests and setup.
    pub fn for_each<F: FnMut(usize, usize, usize)>(&self, mut f: F) {
        for k in self.k0..self.k1 {
            for j in self.j0..self.j1 {
                for i in self.i0..self.i1 {
                    f(i, j, k);
                }
            }
        }
    }

    /// Restrict to a single plane `i == p` along the first axis.
    pub fn plane_i(&self, p: usize) -> Self {
        assert!(p >= self.i0 && p < self.i1);
        Self { i0: p, i1: p + 1, ..*self }
    }

    /// Restrict to a single plane `j == p`.
    pub fn plane_j(&self, p: usize) -> Self {
        assert!(p >= self.j0 && p < self.j1);
        Self { j0: p, j1: p + 1, ..*self }
    }

    /// Restrict to a single plane `k == p`.
    pub fn plane_k(&self, p: usize) -> Self {
        assert!(p >= self.k0 && p < self.k1);
        Self { k0: p, k1: p + 1, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_counts() {
        let b = IndexSpace3::interior(Stagger::CellCenter, 4, 5, 6);
        assert_eq!(b.len(), 4 * 5 * 6);
        let b = IndexSpace3::interior(Stagger::FaceR, 4, 5, 6);
        assert_eq!(b.len(), 5 * 5 * 6);
        assert_eq!(b.i0, NGHOST);
    }

    #[test]
    fn trimmed_block() {
        let b = IndexSpace3::interior_trimmed(Stagger::FaceR, 4, 5, 6, (1, 0, 0));
        assert_eq!(b.extents(), (3, 5, 6));
    }

    #[test]
    fn for_each_visits_every_point_in_order() {
        let b = IndexSpace3 { i0: 0, i1: 2, j0: 0, j1: 2, k0: 0, k1: 1 };
        let mut seen = vec![];
        b.for_each(|i, j, k| seen.push((i, j, k)));
        assert_eq!(seen, vec![(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]);
    }

    #[test]
    fn planes() {
        let b = IndexSpace3::interior(Stagger::CellCenter, 4, 4, 4);
        assert_eq!(b.plane_i(2).len(), 16);
        assert_eq!(b.plane_k(1).extents(), (4, 4, 1));
    }

    #[test]
    #[should_panic(expected = "over-trimmed")]
    fn over_trim_panics() {
        IndexSpace3::interior_trimmed(Stagger::CellCenter, 2, 2, 2, (1, 1, 1));
    }
}
