#![warn(missing_docs)]
//! # mas-grid
//!
//! Logically-rectangular, non-uniform, staggered spherical grids for the
//! `mas-rs` solar-MHD solver — the Rust reproduction of the grid machinery
//! used by the MAS (Magnetohydrodynamic Algorithm outside a Sphere) code.
//!
//! MAS discretizes the solar corona on a spherical `(r, θ, φ)` product mesh:
//!
//! * each direction is an independent non-uniform 1-D mesh ([`Mesh1d`]),
//!   built from stretched segments so resolution can be concentrated near
//!   the photosphere and around active regions;
//! * fields live at staggered locations (cell centers, face centers, edge
//!   centers, vertices) following a Yee-style arrangement so that the
//!   constrained-transport induction update preserves `∇·B = 0` to
//!   round-off ([`Stagger`]);
//! * all metric factors (radii, `sin θ`, cell volumes, face areas, inverse
//!   spacings) are precomputed once ([`SphericalGrid`]).
//!
//! The grid is purely geometric: it knows nothing about MPI decomposition
//! (see `minimpi`) or about which programming model executes the loops
//! (see `stdpar`).

pub mod index;
pub mod mesh1d;
pub mod spherical;
pub mod stagger;

pub use index::IndexSpace3;
pub use mesh1d::{Mesh1d, Segment};
pub use spherical::SphericalGrid;
pub use stagger::Stagger;

/// Number of ghost layers carried on every axis of every array.
///
/// The MAS discretization is second order with one-point upwinding, so a
/// single ghost layer is sufficient for every stencil in the code.
pub const NGHOST: usize = 1;
