//! Non-uniform 1-D meshes built from stretched segments.
//!
//! MAS meshes are specified (in its namelist input) as a list of segments,
//! each covering part of the domain with a geometric stretching ratio.
//! The mesh generator produces the *face* (half-mesh) positions; cell
//! centers, widths and center-to-center spacings are derived from them.
//!
//! Conventions (for a mesh of `n` cells and `g` ghost layers):
//!
//! * `faces` has `n + 1 + 2g` entries; interior faces are `faces[g ..= n+g]`.
//! * `centers` has `n + 2g` entries; interior cells are `centers[g .. n+g]`.
//! * `dc[i] = faces[i+1] - faces[i]` is the width of cell `i`
//!   (length `n + 2g`).
//! * `df[i] = centers[i] - centers[i-1]` is the center-to-center spacing
//!   *at face* `i` (length `n + 1 + 2g`, with one-sided values at the ends).
//!
//! Ghost geometry is extrapolated by mirroring the first/last interior cell
//! widths, which is what a second-order boundary treatment needs.

/// One stretched segment of a 1-D mesh specification.
///
/// A segment covers `[x0, x1]` (filled in by the builder from the previous
/// segment's end) with `frac` of the total cell budget and a geometric
/// ratio `ratio` between the last and first cell width inside the segment
/// (`ratio > 1` ⇒ cells grow along the segment, `< 1` ⇒ shrink).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// End coordinate of this segment (the first segment starts at the
    /// mesh's `x0`; each subsequent segment starts where the previous one
    /// ended).
    pub x_end: f64,
    /// Fraction of the total number of cells allocated to this segment.
    pub frac: f64,
    /// Ratio of the last cell width to the first cell width in the segment.
    pub ratio: f64,
}

impl Segment {
    /// Convenience constructor.
    pub fn new(x_end: f64, frac: f64, ratio: f64) -> Self {
        Self { x_end, frac, ratio }
    }
}

/// A fully-generated non-uniform 1-D mesh.
#[derive(Clone, Debug)]
pub struct Mesh1d {
    /// Number of interior cells.
    pub n: usize,
    /// Ghost layers on each side.
    pub ng: usize,
    /// Domain start (first interior face).
    pub x0: f64,
    /// Domain end (last interior face).
    pub x1: f64,
    /// Face positions, `n + 1 + 2*ng` entries.
    pub faces: Vec<f64>,
    /// Cell-center positions, `n + 2*ng` entries.
    pub centers: Vec<f64>,
    /// Cell widths `faces[i+1]-faces[i]`, `n + 2*ng` entries.
    pub dc: Vec<f64>,
    /// Center-to-center spacings at faces, `n + 1 + 2*ng` entries.
    pub df: Vec<f64>,
    /// Reciprocal of `dc` (precomputed for the hot stencil loops).
    pub dc_inv: Vec<f64>,
    /// Reciprocal of `df`.
    pub df_inv: Vec<f64>,
    /// True if this axis is periodic (used for φ).
    pub periodic: bool,
}

impl Mesh1d {
    /// Build a uniform mesh of `n` cells over `[x0, x1]`.
    pub fn uniform(n: usize, x0: f64, x1: f64, ng: usize, periodic: bool) -> Self {
        assert!(n >= 1, "mesh must have at least one cell");
        assert!(x1 > x0, "mesh domain must be non-degenerate");
        let dx = (x1 - x0) / n as f64;
        let nf = n + 1 + 2 * ng;
        let faces: Vec<f64> = (0..nf)
            .map(|i| x0 + (i as f64 - ng as f64) * dx)
            .collect();
        Self::from_faces(n, ng, faces, periodic)
    }

    /// Build a stretched mesh of `n` cells over `[x0, last segment end]`
    /// from a list of [`Segment`]s.
    ///
    /// Segment cell counts are rounded from their fractions; any remainder
    /// from rounding is assigned to the last segment so exactly `n` cells
    /// are produced. Within each segment the cell widths follow a geometric
    /// progression chosen so the widths sum to the segment length and the
    /// last/first width ratio equals `Segment::ratio`.
    pub fn stretched(n: usize, x0: f64, segments: &[Segment], ng: usize, periodic: bool) -> Self {
        assert!(!segments.is_empty(), "need at least one segment");
        let frac_sum: f64 = segments.iter().map(|s| s.frac).sum();
        assert!(
            (frac_sum - 1.0).abs() < 1e-9,
            "segment fractions must sum to 1 (got {frac_sum})"
        );
        // Distribute cells.
        let mut counts: Vec<usize> = segments
            .iter()
            .map(|s| ((s.frac * n as f64).round() as usize).max(1))
            .collect();
        let assigned: usize = counts.iter().sum();
        let last = counts.len() - 1;
        if assigned > n {
            let excess = assigned - n;
            assert!(
                counts[last] > excess,
                "cannot honor segment fractions for n={n}"
            );
            counts[last] -= excess;
        } else {
            counts[last] += n - assigned;
        }

        let mut faces = Vec::with_capacity(n + 1 + 2 * ng);
        // Interior faces first; ghosts appended afterwards.
        let mut x_start = x0;
        let mut interior = vec![x0];
        for (seg, &m) in segments.iter().zip(&counts) {
            let len = seg.x_end - x_start;
            assert!(len > 0.0, "segments must advance the coordinate");
            let widths = geometric_widths(m, len, seg.ratio);
            let mut x = x_start;
            for w in widths {
                x += w;
                interior.push(x);
            }
            // Snap the segment end exactly to avoid drift.
            *interior.last_mut().unwrap() = seg.x_end;
            x_start = seg.x_end;
        }
        assert_eq!(interior.len(), n + 1);
        // Ghost faces mirror the first/last interior widths.
        faces.extend(std::iter::repeat_n(0.0, ng)); // placeholders, fixed below
        faces.extend_from_slice(&interior);
        faces.extend(std::iter::repeat_n(0.0, ng));
        for g in 0..ng {
            let w = interior[g + 1] - interior[g];
            faces[ng - 1 - g] = faces[ng - g] - w;
            let m = interior.len();
            let w = interior[m - 1 - g] - interior[m - 2 - g];
            faces[ng + n + 1 + g] = faces[ng + n + g] + w;
        }
        Self::from_faces(n, ng, faces, periodic)
    }

    /// Construct the derived arrays from a complete face list
    /// (including ghost faces).
    pub fn from_faces(n: usize, ng: usize, faces: Vec<f64>, periodic: bool) -> Self {
        assert_eq!(faces.len(), n + 1 + 2 * ng, "face array has wrong length");
        for w in faces.windows(2) {
            assert!(w[1] > w[0], "faces must be strictly increasing");
        }
        let x0 = faces[ng];
        let x1 = faces[ng + n];
        let nc = n + 2 * ng;
        let centers: Vec<f64> = (0..nc).map(|i| 0.5 * (faces[i] + faces[i + 1])).collect();
        let dc: Vec<f64> = (0..nc).map(|i| faces[i + 1] - faces[i]).collect();
        let nf = n + 1 + 2 * ng;
        let mut df = vec![0.0; nf];
        for i in 0..nf {
            if i == 0 {
                df[i] = centers[0] - (faces[0] - 0.5 * dc[0]);
            } else if i == nf - 1 {
                df[i] = (faces[nf - 1] + 0.5 * dc[nc - 1]) - centers[nc - 1];
            } else {
                df[i] = centers[i] - centers[i - 1];
            }
        }
        let dc_inv = dc.iter().map(|&d| 1.0 / d).collect();
        let df_inv = df.iter().map(|&d| 1.0 / d).collect();
        Self {
            n,
            ng,
            x0,
            x1,
            faces,
            centers,
            dc,
            df,
            dc_inv,
            df_inv,
            periodic,
        }
    }

    /// Total domain length.
    pub fn length(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Smallest interior cell width (used by CFL estimates).
    pub fn min_dc(&self) -> f64 {
        self.dc[self.ng..self.ng + self.n]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest interior cell width.
    pub fn max_dc(&self) -> f64 {
        self.dc[self.ng..self.ng + self.n]
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// Extract the sub-mesh for cells `[c0, c0+len)` (interior cell indices,
    /// 0-based without ghosts), keeping this mesh's ghost width.
    ///
    /// Used by the domain decomposition: each MPI rank owns a contiguous
    /// slab of cells and needs a local mesh whose ghost geometry matches the
    /// neighbouring rank's interior geometry.
    pub fn submesh(&self, c0: usize, len: usize) -> Mesh1d {
        assert!(len >= 1 && c0 + len <= self.n, "submesh out of range");
        let ng = self.ng;
        let nf = len + 1 + 2 * ng;
        let mut faces = Vec::with_capacity(nf);
        for i in 0..nf {
            // Global face index of local face `i`: c0 + i, but shifted so
            // that local ghost faces line up with global faces where they
            // exist (they always do except at non-periodic global ends,
            // where the global mesh's own extrapolated ghosts are reused).
            let gi = c0 + i;
            faces.push(self.face_wrapped(gi));
        }
        Mesh1d::from_faces(len, ng, faces, self.periodic)
    }

    /// Face position by "extended" index, wrapping periodically if needed.
    ///
    /// `gi` indexes the ghost-extended face array. For periodic meshes,
    /// indices beyond the array are mapped by shifting whole periods, so a
    /// rank at the φ seam sees geometrically-consistent ghost faces.
    fn face_wrapped(&self, gi: usize) -> f64 {
        if !self.periodic {
            return self.faces[gi.min(self.faces.len() - 1)];
        }
        let period = self.length();
        let nfi = self.n; // interior face count minus one
        // Convert to a signed interior-relative index.
        let rel = gi as isize - self.ng as isize;
        let mut idx = rel;
        let mut shift = 0.0;
        while idx < 0 {
            idx += nfi as isize;
            shift -= period;
        }
        while idx > nfi as isize {
            idx -= nfi as isize;
            shift += period;
        }
        self.faces[self.ng + idx as usize] + shift
    }
}

/// Widths of `m` cells in geometric progression summing to `len`, with
/// `last/first = ratio`.
fn geometric_widths(m: usize, len: f64, ratio: f64) -> Vec<f64> {
    assert!(m >= 1);
    assert!(ratio > 0.0, "stretch ratio must be positive");
    if m == 1 || (ratio - 1.0).abs() < 1e-12 {
        return vec![len / m as f64; m];
    }
    // widths w0 * q^i, q = ratio^(1/(m-1)); sum = w0 (q^m - 1)/(q - 1) = len
    let q = ratio.powf(1.0 / (m as f64 - 1.0));
    let w0 = len * (q - 1.0) / (q.powi(m as i32) - 1.0);
    (0..m).map(|i| w0 * q.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_geometry() {
        let m = Mesh1d::uniform(10, 0.0, 1.0, 1, false);
        assert_eq!(m.faces.len(), 13);
        assert_eq!(m.centers.len(), 12);
        assert!((m.faces[1] - 0.0).abs() < 1e-14);
        assert!((m.faces[11] - 1.0).abs() < 1e-14);
        assert!((m.dc[5] - 0.1).abs() < 1e-14);
        assert!((m.centers[1] - 0.05).abs() < 1e-14);
        // Ghost cells mirror interior widths.
        assert!((m.dc[0] - 0.1).abs() < 1e-14);
        assert!((m.dc[11] - 0.1).abs() < 1e-14);
    }

    #[test]
    fn uniform_df_is_dx_in_interior() {
        let m = Mesh1d::uniform(8, 0.0, 2.0, 1, false);
        for i in 1..m.df.len() - 1 {
            assert!((m.df[i] - 0.25).abs() < 1e-14, "df[{i}]={}", m.df[i]);
        }
    }

    #[test]
    fn stretched_mesh_covers_domain_and_ratio() {
        let segs = [Segment::new(2.0, 0.5, 4.0), Segment::new(10.0, 0.5, 8.0)];
        let m = Mesh1d::stretched(64, 1.0, &segs, 1, false);
        assert_eq!(m.n, 64);
        assert!((m.x0 - 1.0).abs() < 1e-12);
        assert!((m.x1 - 10.0).abs() < 1e-12);
        // Widths increase within the first segment with roughly the requested ratio.
        let first = m.dc[m.ng];
        let last_of_seg1 = m.dc[m.ng + 31];
        let ratio = last_of_seg1 / first;
        assert!(
            (ratio - 4.0).abs() / 4.0 < 0.05,
            "stretch ratio {ratio} too far from 4"
        );
    }

    #[test]
    fn stretched_faces_strictly_increasing() {
        let segs = [
            Segment::new(1.5, 0.25, 0.5),
            Segment::new(3.0, 0.25, 1.0),
            Segment::new(30.0, 0.5, 20.0),
        ];
        let m = Mesh1d::stretched(100, 1.0, &segs, 1, false);
        for w in m.faces.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Sum of interior cell widths equals the domain length.
        let sum: f64 = m.dc[m.ng..m.ng + m.n].iter().sum();
        assert!((sum - m.length()).abs() < 1e-10);
    }

    #[test]
    fn geometric_widths_sum_and_ratio() {
        let w = geometric_widths(10, 3.0, 5.0);
        let s: f64 = w.iter().sum();
        assert!((s - 3.0).abs() < 1e-12);
        assert!((w[9] / w[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_mesh_wraps_ghosts() {
        let m = Mesh1d::uniform(8, 0.0, std::f64::consts::TAU, 1, true);
        // Ghost face left of 0 should be one cell before 0.
        let dphi = std::f64::consts::TAU / 8.0;
        assert!((m.faces[0] - (-dphi)).abs() < 1e-12);
    }

    #[test]
    fn submesh_matches_parent_geometry() {
        let segs = [Segment::new(2.0, 0.5, 3.0), Segment::new(8.0, 0.5, 2.0)];
        let m = Mesh1d::stretched(32, 1.0, &segs, 1, false);
        let s = m.submesh(8, 8);
        assert_eq!(s.n, 8);
        // Local interior faces equal global faces 8..=16 (offset by ghosts).
        for i in 0..=8 {
            let g = m.faces[m.ng + 8 + i];
            let l = s.faces[s.ng + i];
            assert!((g - l).abs() < 1e-13, "face {i}: {g} vs {l}");
        }
        // Ghost face of the submesh equals the parent's neighbouring face
        // (interior in the parent).
        assert!((s.faces[0] - m.faces[m.ng + 7]).abs() < 1e-13);
    }

    #[test]
    fn periodic_submesh_seam_ghosts_shift_by_period() {
        let n = 16;
        let m = Mesh1d::uniform(n, 0.0, std::f64::consts::TAU, 1, true);
        // Slab starting at cell 0: its left ghost face lies one period below
        // the face of the last interior cell.
        let s = m.submesh(0, 4);
        let expect = m.faces[m.ng + n - 1] - std::f64::consts::TAU;
        assert!((s.faces[0] - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_nonmonotone_faces() {
        Mesh1d::from_faces(2, 0, vec![0.0, 1.0, 0.5], false);
    }
}
