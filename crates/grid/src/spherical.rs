//! The spherical product grid with precomputed metric factors.
//!
//! MAS runs on `(r, θ, φ)` with non-uniform meshes in `r` and `θ` and a
//! (usually) uniform periodic mesh in `φ`. Because the metric of a
//! spherical product grid is separable, all geometric factors are stored as
//! 1-D arrays and combined inside the kernels — exactly what a
//! memory-bandwidth-bound code wants, and what MAS itself does.
//!
//! Conventions:
//! * `θ ∈ [0, π]` with the polar axis included; `sin θ` at the exact pole
//!   faces is zero, which makes θ-fluxes through the axis vanish naturally.
//! * `φ ∈ [0, 2π)` periodic.
//! * All arrays are ghost-extended with [`crate::NGHOST`] layers.

use crate::{Mesh1d, Segment, Stagger, NGHOST};

/// A complete spherical grid: three 1-D meshes plus precomputed metric
/// arrays (ghost-extended, center and face variants).
#[derive(Clone, Debug)]
pub struct SphericalGrid {
    /// Radial mesh (cells: `nr`).
    pub r: Mesh1d,
    /// Colatitude mesh (cells: `nt`).
    pub t: Mesh1d,
    /// Longitude mesh (cells: `np`), periodic.
    pub p: Mesh1d,
    /// Radial cell count.
    pub nr: usize,
    /// Colatitude cell count.
    pub nt: usize,
    /// Longitude cell count (local slab).
    pub np: usize,

    // --- radial metric arrays ---
    /// r at cell centers (len `nr + 2g`).
    pub rc: Vec<f64>,
    /// r at faces (len `nr + 1 + 2g`).
    pub rf: Vec<f64>,
    /// r² at centers.
    pub rc2: Vec<f64>,
    /// r² at faces.
    pub rf2: Vec<f64>,
    /// 1/r at centers.
    pub rc_inv: Vec<f64>,
    /// 1/r at faces (clamped away from zero; the solar grid never reaches
    /// r = 0 but a test grid might get close).
    pub rf_inv: Vec<f64>,

    // --- colatitude metric arrays ---
    /// sin θ at centers (len `nt + 2g`).
    pub st_c: Vec<f64>,
    /// sin θ at faces (len `nt + 1 + 2g`); exactly 0 on pole faces.
    pub st_f: Vec<f64>,
    /// cos θ at faces.
    pub ct_f: Vec<f64>,
    /// 1/sin θ at centers, clamped near the axis.
    pub st_c_inv: Vec<f64>,
    /// 1/sin θ at faces, clamped (pole faces get 0 — fluxes there are zero
    /// anyway, and 0 avoids propagating infinities).
    pub st_f_inv: Vec<f64>,
    /// `cos θ_f[j] - cos θ_f[j+1]` per θ cell (the exact solid-angle weight).
    pub dcos: Vec<f64>,
    /// `3 / (r_f[i+1]³ − r_f[i]³)` per radial cell — the exact radial
    /// flux-divergence coefficient (shared by the conduction operators).
    pub dr3_inv: Vec<f64>,
    /// `(r_f[i+1]² − r_f[i]²)/2` per radial cell (lateral-face weight).
    pub drr2: Vec<f64>,
    /// `1 / dcos`, with exactly-zero solid angles (pole ghost cells)
    /// mapped to 0 so axis terms vanish instead of propagating infinities.
    pub dcos_inv: Vec<f64>,

    /// True if this grid spans the full sphere in θ (pole faces at 0 and π).
    pub has_poles: bool,
    /// Offset of this grid's first φ cell within a global grid
    /// (0 for a standalone grid; set by [`SphericalGrid::subgrid_phi`]).
    pub phi_offset: usize,
    /// Global φ cell count (equals `np` for a standalone grid).
    pub np_global: usize,
}

/// Threshold below which 1/sinθ is considered "on the axis" and clamped.
const SIN_EPS: f64 = 1e-12;

impl SphericalGrid {
    /// Build a grid from three prepared meshes.
    pub fn new(r: Mesh1d, t: Mesh1d, p: Mesh1d) -> Self {
        assert_eq!(r.ng, NGHOST);
        assert_eq!(t.ng, NGHOST);
        assert_eq!(p.ng, NGHOST);
        assert!(p.periodic, "φ mesh must be periodic");
        assert!(
            t.x0 >= -1e-12 && t.x1 <= std::f64::consts::PI + 1e-12,
            "θ domain must lie in [0, π]"
        );
        let (nr, nt, np) = (r.n, t.n, p.n);

        let rc = r.centers.clone();
        let rf = r.faces.clone();
        let rc2: Vec<f64> = rc.iter().map(|&x| x * x).collect();
        let rf2: Vec<f64> = rf.iter().map(|&x| x * x).collect();
        let rc_inv: Vec<f64> = rc.iter().map(|&x| 1.0 / x.max(SIN_EPS)).collect();
        let rf_inv: Vec<f64> = rf.iter().map(|&x| 1.0 / x.max(SIN_EPS)).collect();

        let has_poles =
            t.x0.abs() < 1e-12 && (t.x1 - std::f64::consts::PI).abs() < 1e-12;
        let st_c: Vec<f64> = t.centers.iter().map(|&x| x.sin()).collect();
        // Snap pole-face sines to exactly zero so axis fluxes vanish.
        let st_f: Vec<f64> = t
            .faces
            .iter()
            .map(|&x| {
                let s = x.sin();
                if x.abs() < 1e-12 || (x - std::f64::consts::PI).abs() < 1e-12 {
                    0.0
                } else {
                    s
                }
            })
            .collect();
        let ct_f: Vec<f64> = t.faces.iter().map(|&x| x.cos()).collect();
        let st_c_inv: Vec<f64> = st_c
            .iter()
            .map(|&s| if s.abs() < SIN_EPS { 0.0 } else { 1.0 / s })
            .collect();
        let st_f_inv: Vec<f64> = st_f
            .iter()
            .map(|&s| if s.abs() < SIN_EPS { 0.0 } else { 1.0 / s })
            .collect();
        let dcos: Vec<f64> = (0..nt + 2 * NGHOST)
            .map(|j| ct_f[j] - ct_f[j + 1])
            .collect();

        let nrc = rc.len();
        let dr3_inv: Vec<f64> = (0..nrc)
            .map(|i| 3.0 / (rf[i + 1].powi(3) - rf[i].powi(3)))
            .collect();
        let drr2: Vec<f64> = (0..nrc).map(|i| 0.5 * (rf2[i + 1] - rf2[i])).collect();
        let dcos_inv: Vec<f64> = dcos
            .iter()
            .map(|&d| if d.abs() < 1e-300 { 0.0 } else { 1.0 / d })
            .collect();

        Self {
            r,
            t,
            p,
            nr,
            nt,
            np,
            rc,
            rf,
            rc2,
            rf2,
            rc_inv,
            rf_inv,
            st_c,
            st_f,
            ct_f,
            st_c_inv,
            st_f_inv,
            dcos,
            dr3_inv,
            drr2,
            dcos_inv,
            has_poles,
            phi_offset: 0,
            np_global: np,
        }
    }

    /// The MAS-style coronal grid: stretched radial mesh concentrated near
    /// the photosphere (`r = 1 R_s`) out to `r_max`, mildly stretched θ, and
    /// uniform φ. `(nr, nt, np)` are the cell counts.
    pub fn coronal(nr: usize, nt: usize, np: usize, r_max: f64) -> Self {
        assert!(r_max > 1.1, "outer boundary must be well above the surface");
        // Radial: fine boundary layer near the surface, geometric growth outward.
        let r_mid = 1.0 + 0.25 * (r_max - 1.0);
        let rsegs = [
            Segment::new(r_mid, 0.5, 6.0),
            Segment::new(r_max, 0.5, 4.0),
        ];
        let r = Mesh1d::stretched(nr, 1.0, &rsegs, NGHOST, false);
        // θ: mildly concentrated toward the equator (streamer belt).
        let pi = std::f64::consts::PI;
        let tsegs = [
            Segment::new(0.5 * pi, 0.5, 0.6),
            Segment::new(pi, 0.5, 1.0 / 0.6),
        ];
        let t = Mesh1d::stretched(nt, 0.0, &tsegs, NGHOST, false);
        let p = Mesh1d::uniform(np, 0.0, std::f64::consts::TAU, NGHOST, true);
        Self::new(r, t, p)
    }

    /// A fully uniform grid, mainly for operator unit tests.
    pub fn uniform(nr: usize, nt: usize, np: usize, r0: f64, r1: f64) -> Self {
        let r = Mesh1d::uniform(nr, r0, r1, NGHOST, false);
        let t = Mesh1d::uniform(nt, 0.0, std::f64::consts::PI, NGHOST, false);
        let p = Mesh1d::uniform(np, 0.0, std::f64::consts::TAU, NGHOST, true);
        Self::new(r, t, p)
    }

    /// Volume of cell `(i, j, k)` (ghost-extended indices).
    ///
    /// `dV = (r_f³ difference)/3 · (cos θ_f difference) · Δφ` — exact for the
    /// spherical metric, so summing interior volumes reproduces the shell
    /// volume to round-off.
    pub fn cell_volume(&self, i: usize, j: usize, k: usize) -> f64 {
        let dr3 = (self.rf[i + 1].powi(3) - self.rf[i].powi(3)) / 3.0;
        dr3 * self.dcos[j] * self.p.dc[k]
    }

    /// Area of the r-face at `(i, j, k)` (face index `i`).
    pub fn area_r(&self, i: usize, j: usize, k: usize) -> f64 {
        self.rf2[i] * self.dcos[j] * self.p.dc[k]
    }

    /// Area of the θ-face at `(i, j, k)` (face index `j`).
    pub fn area_t(&self, i: usize, j: usize, k: usize) -> f64 {
        let dr2 = 0.5 * (self.rf2[i + 1] - self.rf2[i]);
        dr2 * self.st_f[j] * self.p.dc[k]
    }

    /// Area of the φ-face at `(i, j, k)` (face index `k`).
    pub fn area_p(&self, i: usize, j: usize, _k: usize) -> f64 {
        let dr2 = 0.5 * (self.rf2[i + 1] - self.rf2[i]);
        dr2 * self.t.dc[j]
    }

    /// Total interior volume.
    pub fn total_volume(&self) -> f64 {
        let g = NGHOST;
        let mut v = 0.0;
        for k in g..g + self.np {
            for j in g..g + self.nt {
                for i in g..g + self.nr {
                    v += self.cell_volume(i, j, k);
                }
            }
        }
        v
    }

    /// Coordinate of index `idx` along `axis` for a field staggered as `s`
    /// (ghost-extended index).
    pub fn coord(&self, s: Stagger, axis: usize, idx: usize) -> f64 {
        let mesh = match axis {
            0 => &self.r,
            1 => &self.t,
            2 => &self.p,
            _ => panic!("axis must be 0..3"),
        };
        if s.on_half_mesh(axis) {
            mesh.faces[idx]
        } else {
            mesh.centers[idx]
        }
    }

    /// Number of cells (interior).
    pub fn n_cells(&self) -> usize {
        self.nr * self.nt * self.np
    }

    /// Smallest cell extent anywhere on the grid — the length scale that
    /// controls the explicit CFL limit.
    pub fn min_extent(&self) -> f64 {
        let g = NGHOST;
        let mut m = f64::INFINITY;
        for i in g..g + self.nr {
            m = m.min(self.r.dc[i]);
            for j in g..g + self.nt {
                m = m.min(self.rc[i] * self.t.dc[j]);
                let rs = self.rc[i] * self.st_c[j];
                if rs > SIN_EPS {
                    m = m.min(rs * self.p.min_dc());
                }
            }
        }
        m
    }

    /// Extract the φ-slab subgrid owning global φ cells `[k0, k0+len)`.
    ///
    /// The r and θ meshes are shared (cloned); the φ mesh is the
    /// geometric sub-mesh with seam-aware ghost faces. `phi_offset` and
    /// `np_global` record the slab's place in the global grid so boundary
    /// code can distinguish "my edge" from "the global edge".
    pub fn subgrid_phi(&self, k0: usize, len: usize) -> SphericalGrid {
        let p_local = self.p.submesh(k0, len);
        let mut g = SphericalGrid::new(self.r.clone(), self.t.clone(), p_local);
        g.phi_offset = k0;
        g.np_global = self.np;
        g
    }

    /// Partition `np` φ-cells across `n_ranks` slabs as evenly as possible;
    /// returns `(k0, len)` for `rank`.
    pub fn phi_partition(np: usize, n_ranks: usize, rank: usize) -> (usize, usize) {
        assert!(n_ranks >= 1 && rank < n_ranks);
        assert!(np >= n_ranks, "fewer φ planes than ranks");
        let base = np / n_ranks;
        let extra = np % n_ranks;
        let len = base + usize::from(rank < extra);
        let k0 = rank * base + rank.min(extra);
        (k0, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn small() -> SphericalGrid {
        SphericalGrid::coronal(12, 10, 8, 10.0)
    }

    #[test]
    fn volumes_sum_to_shell_volume() {
        let g = small();
        let exact = 4.0 / 3.0 * PI * (10.0_f64.powi(3) - 1.0);
        let v = g.total_volume();
        assert!(
            (v - exact).abs() / exact < 1e-12,
            "volume {v} vs exact {exact}"
        );
    }

    #[test]
    fn pole_faces_have_zero_area() {
        let g = small();
        assert_eq!(g.st_f[NGHOST], 0.0);
        assert_eq!(g.st_f[NGHOST + g.nt], 0.0);
        assert_eq!(g.area_t(NGHOST, NGHOST, NGHOST), 0.0);
    }

    #[test]
    fn face_areas_positive_in_interior() {
        let g = small();
        for i in NGHOST..NGHOST + g.nr {
            for j in NGHOST + 1..NGHOST + g.nt {
                assert!(g.area_r(i, j, NGHOST) > 0.0);
                assert!(g.area_t(i, j, NGHOST) > 0.0);
                assert!(g.area_p(i, j, NGHOST) > 0.0);
            }
        }
    }

    #[test]
    fn coord_selects_half_vs_main_mesh() {
        let g = small();
        let c = g.coord(Stagger::CellCenter, 0, NGHOST);
        let f = g.coord(Stagger::FaceR, 0, NGHOST);
        assert!((f - 1.0).abs() < 1e-12, "first r-face at the surface");
        assert!(c > f);
    }

    #[test]
    fn phi_partition_covers_all_cells() {
        for nranks in [1, 2, 3, 4, 7, 8] {
            let mut total = 0;
            let mut next = 0;
            for rank in 0..nranks {
                let (k0, len) = SphericalGrid::phi_partition(64, nranks, rank);
                assert_eq!(k0, next, "slabs must be contiguous");
                next = k0 + len;
                total += len;
            }
            assert_eq!(total, 64);
        }
    }

    #[test]
    fn subgrid_phi_geometry_matches_parent() {
        let g = small();
        let sg = g.subgrid_phi(2, 4);
        assert_eq!(sg.np, 4);
        assert_eq!(sg.phi_offset, 2);
        assert_eq!(sg.np_global, 8);
        for k in 0..4 {
            let gl = g.p.centers[NGHOST + 2 + k];
            let lo = sg.p.centers[NGHOST + k];
            assert!((gl - lo).abs() < 1e-13);
        }
        // Sum of slab volumes equals global volume.
        let mut v = 0.0;
        for rank in 0..3 {
            let (k0, len) = SphericalGrid::phi_partition(g.np, 3, rank);
            v += g.subgrid_phi(k0, len).total_volume();
        }
        assert!((v - g.total_volume()).abs() / g.total_volume() < 1e-12);
    }

    #[test]
    fn min_extent_positive_and_small() {
        let g = small();
        let m = g.min_extent();
        assert!(m > 0.0);
        assert!(m < g.r.max_dc());
    }

    #[test]
    fn has_poles_detected() {
        let g = small();
        assert!(g.has_poles);
    }
}
