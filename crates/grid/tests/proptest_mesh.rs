//! Property-based tests of the mesh generator and grid geometry.

use mas_grid::{Mesh1d, Segment, SphericalGrid, Stagger, NGHOST};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sub-meshes always reproduce the parent's interior faces exactly,
    /// and their ghost faces line up with the parent's adjacent faces.
    #[test]
    fn submesh_inherits_parent_faces(
        n in 8usize..64,
        c0_frac in 0.0f64..0.8,
        len_frac in 0.1f64..0.9,
        ratio in 0.3f64..5.0,
    ) {
        let segs = [Segment::new(4.0, 1.0, ratio)];
        let m = Mesh1d::stretched(n, 1.0, &segs, NGHOST, false);
        let c0 = ((c0_frac * n as f64) as usize).min(n - 1);
        let len = (((len_frac * (n - c0) as f64) as usize).max(1)).min(n - c0);
        let s = m.submesh(c0, len);
        for i in 0..=len {
            prop_assert!((s.faces[NGHOST + i] - m.faces[NGHOST + c0 + i]).abs() < 1e-12);
        }
        if c0 > 0 {
            prop_assert!((s.faces[0] - m.faces[NGHOST + c0 - 1]).abs() < 1e-12);
        }
    }

    /// Periodic sub-meshes wrap their ghosts by whole periods.
    #[test]
    fn periodic_submesh_ghost_wraps(n in 8usize..64, len in 2usize..8) {
        prop_assume!(len < n);
        let m = Mesh1d::uniform(n, 0.0, std::f64::consts::TAU, NGHOST, true);
        // Slab at the start: left ghost wraps to the far end minus 2π.
        let s = m.submesh(0, len);
        let expect = m.faces[NGHOST + n - 1] - std::f64::consts::TAU;
        prop_assert!((s.faces[0] - expect).abs() < 1e-10);
        // Slab at the end: right ghost wraps past 2π.
        let s = m.submesh(n - len, len);
        let expect = m.faces[NGHOST + 1] + std::f64::consts::TAU;
        prop_assert!((s.faces[NGHOST + len + 1] - expect).abs() < 1e-10);
    }

    /// Face areas and cell volumes obey the divergence-theorem identity
    /// for the unit radial field: `Σ(A_r(out) − A_r(in)) = Σ dV·div(r̂·r)…`
    /// — concretely, the exact closed-surface identity
    /// `A_r(outer shell) − A_r(inner shell) = Σ_cells (A_r(i+1) − A_r(i))`.
    #[test]
    fn face_area_telescoping(nr in 3usize..12, nt in 3usize..10, np in 3usize..8, rmax in 2.0f64..30.0) {
        let g = SphericalGrid::coronal(nr, nt, np, rmax);
        let gg = NGHOST;
        let mut inner = 0.0;
        let mut outer = 0.0;
        let mut telescoped = 0.0;
        for k in gg..gg + np {
            for j in gg..gg + nt {
                inner += g.area_r(gg, j, k);
                outer += g.area_r(gg + nr, j, k);
                for i in gg..gg + nr {
                    telescoped += g.area_r(i + 1, j, k) - g.area_r(i, j, k);
                }
            }
        }
        prop_assert!((telescoped - (outer - inner)).abs() < 1e-9 * outer.max(1.0));
        // Sphere areas: 4π r² at each boundary.
        let exact_inner = 4.0 * std::f64::consts::PI;
        prop_assert!((inner - exact_inner).abs() < 1e-9 * exact_inner);
        let exact_outer = 4.0 * std::f64::consts::PI * rmax * rmax;
        prop_assert!((outer - exact_outer).abs() < 1e-9 * exact_outer);
    }

    /// Staggered dims always differ from cell-centered dims by the
    /// documented offsets, and coordinate lookup respects the staggering.
    #[test]
    fn stagger_coord_consistency(nr in 3usize..10, nt in 3usize..10, np in 3usize..10) {
        let g = SphericalGrid::coronal(nr, nt, np, 5.0);
        for s in Stagger::ALL {
            let (n1, n2, n3) = s.dims(nr, nt, np);
            let (o1, o2, o3) = s.offsets();
            prop_assert_eq!((n1, n2, n3), (nr + o1, nt + o2, np + o3));
            // Half-mesh coordinates sit on faces; main-mesh on centers.
            let c = g.coord(s, 0, NGHOST);
            if s.on_half_mesh(0) {
                prop_assert!((c - g.rf[NGHOST]).abs() < 1e-14);
            } else {
                prop_assert!((c - g.rc[NGHOST]).abs() < 1e-14);
            }
        }
    }
}
