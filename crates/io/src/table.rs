//! Fixed-width text tables (the report format of the benchmark binaries).

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row (must match the header width if a header was set).
    pub fn row<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) -> &mut Self {
        let r: Vec<String> = cols.into_iter().map(Into::into).collect();
        if !self.header.is_empty() {
            assert_eq!(r.len(), self.header.len(), "row width mismatch");
        }
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncol = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut width = vec![0usize; ncol];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.chars().count());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let total: usize = width.iter().sum::<usize>() + 3 * ncol.saturating_sub(1);
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
            let _ = writeln!(out, "{}", "=".repeat(self.title.chars().count().max(total)));
        }
        let fmt_row = |row: &[String], out: &mut String| {
            let mut line = String::new();
            for (c, w) in width.iter().enumerate() {
                let cell = row.get(c).map(String::as_str).unwrap_or("");
                if c + 1 < ncol {
                    let _ = write!(line, "{cell:<w$}   ");
                } else {
                    let _ = write!(line, "{cell:<w$}");
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        };
        if !self.header.is_empty() {
            fmt_row(&self.header, &mut out);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format minutes with two decimals (the paper's unit).
pub fn fmt_min(us: f64) -> String {
    format!("{:.2}", us / 60.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T").header(["a", "bbbb", "c"]);
        t.row(["1", "2", "3"]);
        t.row(["10", "20", "30"]);
        let s = t.render();
        assert!(s.contains("a    bbbb   c"));
        assert!(s.lines().count() >= 5);
        let lines: Vec<&str> = s.lines().collect();
        // Layout: title, rule, header, rule, then the data rows.
        assert!(lines[4].starts_with("1 "));
        assert!(lines[5].starts_with("10"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T").header(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn fmt_min_converts() {
        assert_eq!(fmt_min(60.0e6), "1.00");
        assert_eq!(fmt_min(90.0e6), "1.50");
    }
}
