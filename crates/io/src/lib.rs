#![warn(missing_docs)]
//! # mas-io
//!
//! Output machinery for the benchmark harness and examples:
//!
//! * [`table`] — fixed-width text tables in the paper's layout;
//! * [`csv`] — series writers for the figure data;
//! * [`render`] — PPM/ASCII renders of solution cuts (the paper's Fig. 1);
//! * [`timeline`] — NSIGHT-style textual timelines from profiler spans
//!   (the paper's Fig. 4);
//! * [`dump`] — binary field dumps (checkpoint/restart format).

pub mod csv;
pub mod dump;
pub mod render;
pub mod table;
pub mod timeline;

pub use csv::CsvWriter;
pub use dump::{
    crc32, read_fields, validate_dump, write_fields, write_fields_v1, write_fields_with_fault,
    DumpHeader,
};
pub use render::{render_ascii, render_ppm, Colormap};
pub use table::Table;
pub use timeline::{export_chrome_trace, render_timeline};
