//! Binary field dumps: the checkpoint/restart format.
//!
//! Version-3 layout (all little-endian):
//!
//! ```text
//! magic   b"MASRSDMP"
//! version u32            (3)
//! step    u64
//! time    f64
//! epoch   u64            (communicator epoch at dump time; v3 only)
//! nfields u32
//! per field:
//!   name_len u32, name bytes,
//!   s1 u32, s2 u32, s3 u32,
//!   s1*s2*s3 f64 values (full storage, ghosts included)
//! crc32   u32            (IEEE CRC-32 over every byte above)
//! ```
//!
//! Version 2 omits the epoch word, version 1 additionally omits the CRC
//! trailer; the reader accepts all three (older versions report epoch 0).
//! Writes are **crash-safe**: the dump is written to a `.tmp` sibling,
//! fsynced, and atomically renamed over the final path, so a crash
//! mid-write can never leave a truncated file where a good dump should
//! be — at worst a stale `.tmp` litters the directory.

use mas_field::Array3;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MASRSDMP";
const VERSION: u32 = 3;
/// Longest accepted field name (guards against reading garbage lengths).
const MAX_NAME_LEN: usize = 256;

/// Run metadata stored in a dump.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DumpHeader {
    /// Step counter at dump time.
    pub step: u64,
    /// Physical time at dump time.
    pub time: f64,
    /// Communicator epoch at dump time: bumped on every rank respawn, so
    /// a checkpoint records which incarnation of the world wrote it.
    /// Dumps older than format v3 read back as epoch 0.
    pub epoch: u64,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, no dependencies.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC-32 accumulator.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32(0xffff_ffff)
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Finalized checksum value.
    pub fn value(&self) -> u32 {
        self.0 ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.value()
}

/// Writer adapter that checksums everything passing through it.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter that checksums everything passing through it.
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Primitive (de)serialization helpers.
// ---------------------------------------------------------------------------

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` with truncation mapped to a clean `InvalidData` error
/// (a short file is corrupt data, not an I/O transport failure).
fn read_exact_or_bad(r: &mut impl Read, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            bad(format!("truncated dump while reading {what}"))
        } else {
            e
        }
    })
}

fn r_u32(r: &mut impl Read, what: &str) -> io::Result<u32> {
    let mut b = [0u8; 4];
    read_exact_or_bad(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64(r: &mut impl Read, what: &str) -> io::Result<u64> {
    let mut b = [0u8; 8];
    read_exact_or_bad(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read, what: &str) -> io::Result<f64> {
    let mut b = [0u8; 8];
    read_exact_or_bad(r, &mut b, what)?;
    Ok(f64::from_le_bytes(b))
}

// ---------------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------------

fn write_body(
    w: &mut impl Write,
    version: u32,
    header: DumpHeader,
    fields: &[(&str, &Array3)],
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w_u32(w, version)?;
    w_u64(w, header.step)?;
    w_f64(w, header.time)?;
    if version >= 3 {
        w_u64(w, header.epoch)?;
    }
    w_u32(w, fields.len() as u32)?;
    for (name, a) in fields {
        w_u32(w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        w_u32(w, a.s1 as u32)?;
        w_u32(w, a.s2 as u32)?;
        w_u32(w, a.s3 as u32)?;
        for &v in a.as_slice() {
            w_f64(w, v)?;
        }
    }
    Ok(())
}

/// Write `fields` (name, array) to `path` in the current (v3) format.
///
/// Crash-safe: data lands in `<path>.tmp` first, is fsynced, and is then
/// atomically renamed onto `path` — readers never observe a partial dump.
pub fn write_fields(
    path: impl AsRef<Path>,
    header: DumpHeader,
    fields: &[(&str, &Array3)],
) -> io::Result<()> {
    write_fields_with_fault(path, header, fields, None)
}

/// [`write_fields`] with an optional injected failure: when `fault` is
/// `Some(kind)`, the write starts (creating the `.tmp` sibling and
/// emitting a partial header) and then fails with an error of `kind`
/// **before** the atomic rename — exactly what a node loss mid-checkpoint
/// looks like from the next process's point of view. The destination path
/// is never touched. This is the fault-injection seam used by the run
/// supervisor; production callers use [`write_fields`].
pub fn write_fields_with_fault(
    path: impl AsRef<Path>,
    header: DumpHeader,
    fields: &[(&str, &Array3)],
    fault: Option<io::ErrorKind>,
) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = CrcWriter {
            inner: BufWriter::new(file),
            crc: Crc32::new(),
        };
        if let Some(kind) = fault {
            // Simulate dying partway through: emit a torn prefix, leave
            // the .tmp behind, report the chosen error.
            w.write_all(MAGIC)?;
            w_u32(&mut w, VERSION)?;
            w.flush()?;
            return Err(io::Error::new(kind, "injected checkpoint write failure"));
        }
        write_body(&mut w, VERSION, header, fields)?;
        let crc = w.crc.value();
        w_u32(&mut w, crc)?;
        w.flush()?;
        // Durability: the data must be on disk before the rename makes it
        // the authoritative dump.
        w.inner.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Write a **version-1** dump (no CRC trailer, direct write — the legacy
/// format). Kept for backward-compatibility testing; new code should use
/// [`write_fields`].
pub fn write_fields_v1(
    path: impl AsRef<Path>,
    header: DumpHeader,
    fields: &[(&str, &Array3)],
) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_body(&mut w, 1, header, fields)?;
    w.flush()
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

// ---------------------------------------------------------------------------
// Reading.
// ---------------------------------------------------------------------------

/// Read a dump into the provided `(name, array)` pairs. Every requested
/// field must be present with matching storage dimensions; extra fields
/// in the file are an error (dumps and solvers must agree exactly).
///
/// Accepts both format versions; for v2 the CRC-32 trailer is verified
/// over the full header + payload, and any trailing bytes after the
/// trailer (or, for v1, after the last field) are rejected — a dump is
/// exactly its declared content or it is corrupt.
pub fn read_fields(
    path: impl AsRef<Path>,
    fields: &mut [(&str, &mut Array3)],
) -> io::Result<DumpHeader> {
    let mut r = CrcReader {
        inner: BufReader::new(std::fs::File::open(path)?),
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 8];
    read_exact_or_bad(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bad("not a mas-rs dump file"));
    }
    let version = r_u32(&mut r, "format version")?;
    if !(1..=VERSION).contains(&version) {
        return Err(bad(format!("unsupported dump version {version}")));
    }
    let header = DumpHeader {
        step: r_u64(&mut r, "step")?,
        time: r_f64(&mut r, "time")?,
        epoch: if version >= 3 { r_u64(&mut r, "epoch")? } else { 0 },
    };
    let nfields = r_u32(&mut r, "field count")? as usize;
    if nfields != fields.len() {
        return Err(bad(format!(
            "dump holds {nfields} fields, solver expects {}",
            fields.len()
        )));
    }
    for (expect_name, a) in fields.iter_mut() {
        let name_len = r_u32(&mut r, "field name length")? as usize;
        if name_len > MAX_NAME_LEN {
            // Bounded before any allocation: a corrupt length can never
            // trigger a huge Vec.
            return Err(bad(format!(
                "corrupt field name (length {name_len} exceeds {MAX_NAME_LEN})"
            )));
        }
        let mut name = vec![0u8; name_len];
        read_exact_or_bad(&mut r, &mut name, "field name")?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 field name"))?;
        if name != *expect_name {
            return Err(bad(format!("field order mismatch: '{name}' vs '{expect_name}'")));
        }
        let s1 = r_u32(&mut r, "dim s1")? as usize;
        let s2 = r_u32(&mut r, "dim s2")? as usize;
        let s3 = r_u32(&mut r, "dim s3")? as usize;
        // Overflow-checked element count: s1*s2*s3 as u32s can overflow
        // usize multiplication on 32-bit targets and must never panic or
        // size an allocation.
        let n = s1
            .checked_mul(s2)
            .and_then(|x| x.checked_mul(s3))
            .ok_or_else(|| bad(format!("field '{name}' dims {s1}x{s2}x{s3} overflow")))?;
        if (s1, s2, s3) != (a.s1, a.s2, a.s3) || n != a.as_slice().len() {
            return Err(bad(format!(
                "field '{name}' dims {s1}x{s2}x{s3} vs expected {}x{}x{}",
                a.s1, a.s2, a.s3
            )));
        }
        for v in a.as_mut_slice() {
            *v = r_f64(&mut r, "field data")?;
        }
    }
    if version >= 2 {
        // The CRC accumulated so far covers magic..payload; the trailer
        // itself must match it.
        let expect = r.crc.value();
        let mut b = [0u8; 4];
        read_exact_or_bad(&mut r, &mut b, "crc trailer")?;
        let stored = u32::from_le_bytes(b);
        if stored != expect {
            return Err(bad(format!(
                "checksum mismatch: stored {stored:#010x}, computed {expect:#010x} — dump is corrupt"
            )));
        }
    }
    // Reject trailing bytes: the dump is exactly its declared content.
    let mut extra = [0u8; 1];
    match r.inner.read(&mut extra)? {
        0 => Ok(header),
        _ => Err(bad("trailing bytes after dump content")),
    }
}

/// Validate a dump **without** loading it into arrays: parse the full
/// structure, stream the payload through the checksum in bounded chunks
/// (a corrupt size field can never trigger a huge allocation), and — for
/// v2 — verify the CRC trailer and reject trailing bytes. Returns the
/// header on success.
///
/// This is how the run supervisor picks the newest *valid* rotation slot
/// at restart time: a torn or bit-rotted candidate fails here and the
/// previous slot is used instead.
pub fn validate_dump(path: impl AsRef<Path>) -> io::Result<DumpHeader> {
    let mut r = CrcReader {
        inner: BufReader::new(std::fs::File::open(path)?),
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 8];
    read_exact_or_bad(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bad("not a mas-rs dump file"));
    }
    let version = r_u32(&mut r, "format version")?;
    if !(1..=VERSION).contains(&version) {
        return Err(bad(format!("unsupported dump version {version}")));
    }
    let header = DumpHeader {
        step: r_u64(&mut r, "step")?,
        time: r_f64(&mut r, "time")?,
        epoch: if version >= 3 { r_u64(&mut r, "epoch")? } else { 0 },
    };
    let nfields = r_u32(&mut r, "field count")? as usize;
    let mut scratch = [0u8; 8192];
    for _ in 0..nfields {
        let name_len = r_u32(&mut r, "field name length")? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(bad(format!(
                "corrupt field name (length {name_len} exceeds {MAX_NAME_LEN})"
            )));
        }
        read_exact_or_bad(&mut r, &mut scratch[..name_len], "field name")?;
        let s1 = r_u32(&mut r, "dim s1")? as usize;
        let s2 = r_u32(&mut r, "dim s2")? as usize;
        let s3 = r_u32(&mut r, "dim s3")? as usize;
        let n = s1
            .checked_mul(s2)
            .and_then(|x| x.checked_mul(s3))
            .and_then(|x| x.checked_mul(8))
            .ok_or_else(|| bad(format!("field dims {s1}x{s2}x{s3} overflow")))?;
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            read_exact_or_bad(&mut r, &mut scratch[..take], "field data")?;
            remaining -= take;
        }
    }
    if version >= 2 {
        let expect = r.crc.value();
        let mut b = [0u8; 4];
        read_exact_or_bad(&mut r, &mut b, "crc trailer")?;
        if u32::from_le_bytes(b) != expect {
            return Err(bad("checksum mismatch — dump is corrupt"));
        }
    }
    let mut extra = [0u8; 1];
    match r.inner.read(&mut extra)? {
        0 => Ok(header),
        _ => Err(bad("trailing bytes after dump content")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mas_io_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_pair() -> (Array3, Array3) {
        let mut a = Array3::zeros(3, 4, 5);
        let mut b = Array3::zeros(2, 2, 2);
        for (idx, v) in a.as_mut_slice().iter_mut().enumerate() {
            *v = idx as f64 * 0.5;
        }
        b.set(1, 1, 1, -7.25);
        (a, b)
    }

    #[test]
    fn roundtrip() {
        let (a, b) = sample_pair();
        let p = temp_path("rt.dump");
        write_fields(&p, DumpHeader { step: 42, time: 1.5, epoch: 3 }, &[("rho", &a), ("temp", &b)])
            .unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let mut b2 = Array3::zeros(2, 2, 2);
        let h = read_fields(&p, &mut [("rho", &mut a2), ("temp", &mut b2)]).unwrap();
        assert_eq!(h, DumpHeader { step: 42, time: 1.5, epoch: 3 });
        assert_eq!(a.as_slice(), a2.as_slice());
        assert_eq!(b.as_slice(), b2.as_slice());
        // Atomic write leaves no temp litter on success.
        assert!(!tmp_path(&p).exists());
    }

    #[test]
    fn reads_legacy_v1_dumps() {
        let (a, b) = sample_pair();
        let p = temp_path("v1.dump");
        // A v1 writer has nowhere to put the epoch: it must read back as 0
        // no matter what the caller set.
        write_fields_v1(&p, DumpHeader { step: 7, time: 0.25, epoch: 99 }, &[("rho", &a), ("temp", &b)])
            .unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let mut b2 = Array3::zeros(2, 2, 2);
        let h = read_fields(&p, &mut [("rho", &mut a2), ("temp", &mut b2)]).unwrap();
        assert_eq!(h, DumpHeader { step: 7, time: 0.25, epoch: 0 });
        assert_eq!(a.as_slice(), a2.as_slice());
    }

    #[test]
    fn reads_legacy_v2_dumps_with_zero_epoch() {
        let (a, _) = sample_pair();
        let p = temp_path("v2.dump");
        // Hand-roll a v2 dump (epoch-less header + CRC trailer) exactly as
        // the previous release wrote it.
        {
            let file = std::fs::File::create(&p).unwrap();
            let mut w = CrcWriter { inner: BufWriter::new(file), crc: Crc32::new() };
            write_body(&mut w, 2, DumpHeader { step: 6, time: 1.25, epoch: 77 }, &[("rho", &a)])
                .unwrap();
            let crc = w.crc.value();
            w_u32(&mut w, crc).unwrap();
            w.flush().unwrap();
        }
        let h = validate_dump(&p).unwrap();
        assert_eq!(h, DumpHeader { step: 6, time: 1.25, epoch: 0 });
        let mut a2 = Array3::zeros(3, 4, 5);
        let h = read_fields(&p, &mut [("rho", &mut a2)]).unwrap();
        assert_eq!(h.epoch, 0);
        assert_eq!(a.as_slice(), a2.as_slice());
    }

    #[test]
    fn crc_catches_single_flipped_byte_anywhere() {
        let (a, b) = sample_pair();
        let p = temp_path("flip.dump");
        write_fields(&p, DumpHeader { step: 1, time: 2.0, epoch: 0 }, &[("rho", &a), ("temp", &b)])
            .unwrap();
        let good = std::fs::read(&p).unwrap();
        // Flip one byte in a payload value (past header/names so the
        // structural checks cannot catch it — only the CRC can).
        let mut corrupt = good.clone();
        let idx = good.len() - 12; // inside the last field's data
        corrupt[idx] ^= 0x40;
        let pc = temp_path("flip_c.dump");
        std::fs::write(&pc, &corrupt).unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let mut b2 = Array3::zeros(2, 2, 2);
        let err = read_fields(&pc, &mut [("rho", &mut a2), ("temp", &mut b2)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (a, _) = sample_pair();
        let p = temp_path("trail.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.push(0u8);
        std::fs::write(&p, &bytes).unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let err = read_fields(&p, &mut [("rho", &mut a2)]).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn injected_write_fault_leaves_destination_untouched() {
        let (a, _) = sample_pair();
        let p = temp_path("fault.dump");
        // A good dump exists...
        write_fields(&p, DumpHeader { step: 5, time: 1.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        // ...then the next write dies mid-flight.
        let err = write_fields_with_fault(
            &p,
            DumpHeader { step: 9, time: 2.0, epoch: 0 },
            &[("rho", &a)],
            Some(io::ErrorKind::Other),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The torn temp exists, the good dump survives.
        assert!(tmp_path(&p).exists());
        let mut a2 = Array3::zeros(3, 4, 5);
        let h = read_fields(&p, &mut [("rho", &mut a2)]).unwrap();
        assert_eq!(h.step, 5);
        std::fs::remove_file(tmp_path(&p)).ok();
    }

    #[test]
    fn truncation_at_every_boundary_is_clean_invalid_data() {
        let (a, b) = sample_pair();
        let p = temp_path("trunc.dump");
        write_fields(&p, DumpHeader { step: 3, time: 0.5, epoch: 0 }, &[("rho", &a), ("temp", &b)])
            .unwrap();
        let good = std::fs::read(&p).unwrap();
        // Section boundaries of the v3 layout (offsets in bytes):
        //   0 magic | 8 version | 12 step | 20 time | 28 epoch |
        //   36 nfields | 40 name_len | 44 name | 47 dims | 59 payload
        //   start | mid-payload | end-of-payload (missing CRC) | partial CRC
        let cuts = [
            0usize, 4, 8, 10, 12, 16, 20, 24, 28, 32, 36, 38, 40, 42, 44, 46, 47, 53, 59, 60, 68,
            good.len() - 4, // everything but the CRC trailer
            good.len() - 2, // partial CRC trailer
        ];
        for cut in cuts {
            let pt = temp_path("trunc_cut.dump");
            std::fs::write(&pt, &good[..cut]).unwrap();
            let mut a2 = Array3::zeros(3, 4, 5);
            let mut b2 = Array3::zeros(2, 2, 2);
            let err = read_fields(&pt, &mut [("rho", &mut a2), ("temp", &mut b2)])
                .expect_err(&format!("cut at {cut} must fail"));
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {cut}: kind {:?} ({err})",
                err.kind()
            );
        }
    }

    #[test]
    fn oversized_name_len_is_rejected_without_allocation() {
        let (a, _) = sample_pair();
        let p = temp_path("bigname.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // name_len lives at offset 40 (after the v3 epoch word); claim ~4 GiB.
        bytes[40..44].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let err = read_fields(&p, &mut [("rho", &mut a2)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt field name"), "{err}");
    }

    #[test]
    fn dim_overflow_is_rejected_cleanly() {
        let (a, _) = sample_pair();
        let p = temp_path("dimovf.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // Dims live right after "rho" (offset 40 name_len + 4 + 3 name).
        let d = 47;
        bytes[d..d + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[d + 4..d + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[d + 8..d + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let err = read_fields(&p, &mut [("rho", &mut a2)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Either the checked product or the dim comparison rejects it —
        // both are InvalidData and neither panics or allocates.
    }

    #[test]
    fn rejects_wrong_magic() {
        let p = temp_path("bad.dump");
        std::fs::write(&p, b"NOTADUMPxxxxxxxxxxxx").unwrap();
        let mut a = Array3::zeros(2, 2, 2);
        let err = read_fields(&p, &mut [("rho", &mut a)]).unwrap_err();
        assert!(err.to_string().contains("not a mas-rs dump"));
    }

    #[test]
    fn rejects_future_version() {
        let (a, _) = sample_pair();
        let p = temp_path("future.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let err = read_fields(&p, &mut [("rho", &mut a2)]).unwrap_err();
        assert!(err.to_string().contains("unsupported dump version"));
    }

    #[test]
    fn rejects_dim_mismatch() {
        let a = Array3::zeros(3, 3, 3);
        let p = temp_path("dims.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut b = Array3::zeros(4, 3, 3);
        let err = read_fields(&p, &mut [("rho", &mut b)]).unwrap_err();
        assert!(err.to_string().contains("dims"));
    }

    #[test]
    fn rejects_name_mismatch() {
        let a = Array3::zeros(2, 2, 2);
        let p = temp_path("names.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut b = Array3::zeros(2, 2, 2);
        let err = read_fields(&p, &mut [("temp", &mut b)]).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn rejects_field_count_mismatch() {
        let a = Array3::zeros(2, 2, 2);
        let p = temp_path("count.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0, epoch: 0 }, &[("rho", &a)]).unwrap();
        let mut b = Array3::zeros(2, 2, 2);
        let mut c = Array3::zeros(2, 2, 2);
        let err = read_fields(&p, &mut [("rho", &mut b), ("temp", &mut c)]).unwrap_err();
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn validate_accepts_good_rejects_corrupt() {
        let (a, b) = sample_pair();
        let p = temp_path("val.dump");
        write_fields(&p, DumpHeader { step: 11, time: 3.5, epoch: 0 }, &[("rho", &a), ("temp", &b)])
            .unwrap();
        let h = validate_dump(&p).unwrap();
        assert_eq!(h, DumpHeader { step: 11, time: 3.5, epoch: 0 });
        // Flip a payload byte: validation must reject it.
        let mut bytes = std::fs::read(&p).unwrap();
        let idx = bytes.len() - 12;
        bytes[idx] ^= 0x01;
        let pc = temp_path("val_c.dump");
        std::fs::write(&pc, &bytes).unwrap();
        let err = validate_dump(&pc).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncation is also clean InvalidData, at every prefix length.
        let good = std::fs::read(&p).unwrap();
        for cut in [0, 7, 13, 31, 40, good.len() - 1] {
            let pt = temp_path("val_t.dump");
            std::fs::write(&pt, &good[..cut]).unwrap();
            let err = validate_dump(&pt).expect_err(&format!("cut {cut}"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut {cut}: {err}");
        }
        // Oversized dims stream-discard without allocating: claim huge
        // dims and let the bounded reader hit EOF cleanly.
        let mut big = good.clone();
        big[47..51].copy_from_slice(&1000u32.to_le_bytes());
        big[51..55].copy_from_slice(&1000u32.to_le_bytes());
        big[55..59].copy_from_slice(&1000u32.to_le_bytes());
        let pb = temp_path("val_b.dump");
        std::fs::write(&pb, &big).unwrap();
        let err = validate_dump(&pb).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}
