//! Binary field dumps: the checkpoint/restart format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   b"MASRSDMP"
//! version u32
//! step    u64
//! time    f64
//! nfields u32
//! per field:
//!   name_len u32, name bytes,
//!   s1 u32, s2 u32, s3 u32,
//!   s1*s2*s3 f64 values (full storage, ghosts included)
//! ```

use mas_field::Array3;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MASRSDMP";
const VERSION: u32 = 1;

/// Run metadata stored in a dump.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DumpHeader {
    /// Step counter at dump time.
    pub step: u64,
    /// Physical time at dump time.
    pub time: f64,
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write `fields` (name, array) to `path`.
pub fn write_fields(
    path: impl AsRef<Path>,
    header: DumpHeader,
    fields: &[(&str, &Array3)],
) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w_u32(&mut w, VERSION)?;
    w_u64(&mut w, header.step)?;
    w_f64(&mut w, header.time)?;
    w_u32(&mut w, fields.len() as u32)?;
    for (name, a) in fields {
        w_u32(&mut w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        w_u32(&mut w, a.s1 as u32)?;
        w_u32(&mut w, a.s2 as u32)?;
        w_u32(&mut w, a.s3 as u32)?;
        for &v in a.as_slice() {
            w_f64(&mut w, v)?;
        }
    }
    w.flush()
}

/// Read a dump into the provided `(name, array)` pairs. Every requested
/// field must be present with matching storage dimensions; extra fields
/// in the file are an error (dumps and solvers must agree exactly).
pub fn read_fields(
    path: impl AsRef<Path>,
    fields: &mut [(&str, &mut Array3)],
) -> io::Result<DumpHeader> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a mas-rs dump file"));
    }
    let version = r_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported dump version {version}")));
    }
    let header = DumpHeader {
        step: r_u64(&mut r)?,
        time: r_f64(&mut r)?,
    };
    let nfields = r_u32(&mut r)? as usize;
    if nfields != fields.len() {
        return Err(bad(format!(
            "dump holds {nfields} fields, solver expects {}",
            fields.len()
        )));
    }
    for (expect_name, a) in fields.iter_mut() {
        let name_len = r_u32(&mut r)? as usize;
        if name_len > 256 {
            return Err(bad("corrupt field name"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 field name"))?;
        if name != *expect_name {
            return Err(bad(format!("field order mismatch: '{name}' vs '{expect_name}'")));
        }
        let (s1, s2, s3) = (r_u32(&mut r)? as usize, r_u32(&mut r)? as usize, r_u32(&mut r)? as usize);
        if (s1, s2, s3) != (a.s1, a.s2, a.s3) {
            return Err(bad(format!(
                "field '{name}' dims {s1}x{s2}x{s3} vs expected {}x{}x{}",
                a.s1, a.s2, a.s3
            )));
        }
        for v in a.as_mut_slice() {
            *v = r_f64(&mut r)?;
        }
    }
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mas_io_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let mut a = Array3::zeros(3, 4, 5);
        let mut b = Array3::zeros(2, 2, 2);
        for (idx, v) in a.as_mut_slice().iter_mut().enumerate() {
            *v = idx as f64 * 0.5;
        }
        b.set(1, 1, 1, -7.25);
        let p = temp_path("rt.dump");
        write_fields(&p, DumpHeader { step: 42, time: 1.5 }, &[("rho", &a), ("temp", &b)])
            .unwrap();
        let mut a2 = Array3::zeros(3, 4, 5);
        let mut b2 = Array3::zeros(2, 2, 2);
        let h = read_fields(&p, &mut [("rho", &mut a2), ("temp", &mut b2)]).unwrap();
        assert_eq!(h, DumpHeader { step: 42, time: 1.5 });
        assert_eq!(a.as_slice(), a2.as_slice());
        assert_eq!(b.as_slice(), b2.as_slice());
    }

    #[test]
    fn rejects_wrong_magic() {
        let p = temp_path("bad.dump");
        std::fs::write(&p, b"NOTADUMPxxxxxxxxxxxx").unwrap();
        let mut a = Array3::zeros(2, 2, 2);
        let err = read_fields(&p, &mut [("rho", &mut a)]).unwrap_err();
        assert!(err.to_string().contains("not a mas-rs dump"));
    }

    #[test]
    fn rejects_dim_mismatch() {
        let a = Array3::zeros(3, 3, 3);
        let p = temp_path("dims.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0 }, &[("rho", &a)]).unwrap();
        let mut b = Array3::zeros(4, 3, 3);
        let err = read_fields(&p, &mut [("rho", &mut b)]).unwrap_err();
        assert!(err.to_string().contains("dims"));
    }

    #[test]
    fn rejects_name_mismatch() {
        let a = Array3::zeros(2, 2, 2);
        let p = temp_path("names.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0 }, &[("rho", &a)]).unwrap();
        let mut b = Array3::zeros(2, 2, 2);
        let err = read_fields(&p, &mut [("temp", &mut b)]).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn rejects_field_count_mismatch() {
        let a = Array3::zeros(2, 2, 2);
        let p = temp_path("count.dump");
        write_fields(&p, DumpHeader { step: 0, time: 0.0 }, &[("rho", &a)]).unwrap();
        let mut b = Array3::zeros(2, 2, 2);
        let mut c = Array3::zeros(2, 2, 2);
        let err = read_fields(&p, &mut [("rho", &mut b), ("temp", &mut c)]).unwrap_err();
        assert!(err.to_string().contains("expects 2"));
    }
}
