//! NSIGHT-Systems-style textual timelines from profiler spans (Fig. 4).
//!
//! The paper's Fig. 4 shows two lanes per run — compute kernels and
//! memory/communication — over a window of viscosity-solver iterations,
//! contrasting manual memory (P2P transfers between kernels) with unified
//! memory (CPU↔GPU page migrations and larger launch gaps). This renderer
//! reproduces that view in fixed-width text from `gpusim` spans.

use gpusim::{Span, TimeCategory};
use std::fmt::Write as _;

/// Character used for each category in the timeline lanes.
fn glyph(cat: TimeCategory) -> char {
    match cat {
        TimeCategory::Kernel => 'K',
        TimeCategory::LaunchGap => '.',
        TimeCategory::MemcpyH2D => 'h',
        TimeCategory::MemcpyD2H => 'd',
        TimeCategory::P2P => 'P',
        TimeCategory::PageMigration => 'U',
        TimeCategory::Pack => 'p',
        TimeCategory::Collective => 'C',
        TimeCategory::MpiWait => 'w',
        TimeCategory::Other => '?',
    }
}

fn is_compute_lane(cat: TimeCategory) -> bool {
    matches!(cat, TimeCategory::Kernel | TimeCategory::LaunchGap)
}

/// Render spans within `[t0, t1]` µs as a two-lane timeline of `width`
/// characters, plus a legend and per-category totals for the window.
pub fn render_timeline(spans: &[Span], t0: f64, t1: f64, width: usize, label: &str) -> String {
    assert!(t1 > t0, "empty window");
    let width = width.max(20);
    let mut lane_compute = vec![' '; width];
    let mut lane_mem = vec![' '; width];
    let dt = (t1 - t0) / width as f64;
    let mut totals = [0.0f64; 10];

    for s in spans {
        if s.t1 <= t0 || s.t0 >= t1 {
            continue;
        }
        let a = ((s.t0.max(t0) - t0) / dt) as usize;
        let b = (((s.t1.min(t1) - t0) / dt).ceil() as usize).min(width);
        let lane = if is_compute_lane(s.cat) {
            &mut lane_compute
        } else {
            &mut lane_mem
        };
        let g = glyph(s.cat);
        for c in lane.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
            *c = g;
        }
        totals[s.cat.index()] += s.t1.min(t1) - s.t0.max(t0);
    }

    let mut out = String::new();
    let _ = writeln!(out, "── {label} ── window {:.1}–{:.1} µs", t0, t1);
    let _ = writeln!(out, "GPU    |{}|", lane_compute.iter().collect::<String>());
    let _ = writeln!(out, "MEM/IO |{}|", lane_mem.iter().collect::<String>());
    let mut parts = vec![];
    for cat in TimeCategory::ALL {
        let tot = totals[cat.index()];
        if tot > 0.0 {
            parts.push(format!("{}={} {:.1}µs", glyph(cat), cat.label(), tot));
        }
    }
    let _ = writeln!(out, "legend: {}", parts.join("  "));
    out
}

/// Export spans as a Chrome-tracing (`chrome://tracing` / Perfetto) JSON
/// file: one complete event per span, with the category and phase as
/// metadata. Times are virtual µs.
pub fn export_chrome_trace(
    spans: &[Span],
    rank: usize,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "[")?;
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 == spans.len() { "" } else { "," };
        // Two "threads" per rank: GPU lane and MEM/IO lane (matches the
        // textual renderer).
        let tid = if is_compute_lane(s.cat) { 0 } else { 1 };
        writeln!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}}}{}",
            s.name,
            s.cat.label(),
            s.t0,
            s.dur(),
            rank,
            tid,
            comma
        )?;
    }
    writeln!(out, "]")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::Phase;

    fn span(t0: f64, t1: f64, cat: TimeCategory) -> Span {
        Span {
            t0,
            t1,
            cat,
            phase: Phase::Compute,
            name: "x",
        }
    }

    #[test]
    fn kernels_and_transfers_on_separate_lanes() {
        let spans = vec![
            span(0.0, 50.0, TimeCategory::Kernel),
            span(50.0, 60.0, TimeCategory::P2P),
            span(60.0, 100.0, TimeCategory::Kernel),
        ];
        let s = render_timeline(&spans, 0.0, 100.0, 50, "test");
        let lines: Vec<&str> = s.lines().collect();
        let gpu_lane = lines[1].split('|').nth(1).unwrap();
        let mem_lane = lines[2].split('|').nth(1).unwrap();
        assert!(gpu_lane.contains('K'));
        assert!(!gpu_lane.contains('P'));
        assert!(mem_lane.contains('P'));
        assert!(s.contains("P=P2P"));
    }

    #[test]
    fn spans_outside_window_ignored() {
        let spans = vec![span(1000.0, 2000.0, TimeCategory::Kernel)];
        let s = render_timeline(&spans, 0.0, 100.0, 40, "w");
        assert!(!s.lines().nth(1).unwrap().contains('K'));
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let spans = vec![
            span(0.0, 10.0, TimeCategory::Kernel),
            span(10.0, 12.0, TimeCategory::P2P),
        ];
        let dir = std::env::temp_dir().join("mas_io_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        export_chrome_trace(&spans, 3, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 2);
        assert!(text.contains("\"cat\":\"P2P\""));
        assert!(text.contains("\"pid\":3"));
        // Kernel on tid 0, transfer on tid 1.
        assert!(text.contains("\"tid\":0"));
        assert!(text.contains("\"tid\":1"));
        // No trailing comma before the closing bracket.
        assert!(!text.contains(",\n]"));
    }

    #[test]
    fn page_migrations_visible_in_um_story() {
        let spans = vec![
            span(0.0, 10.0, TimeCategory::Kernel),
            span(10.0, 40.0, TimeCategory::PageMigration),
            span(40.0, 50.0, TimeCategory::Kernel),
        ];
        let s = render_timeline(&spans, 0.0, 50.0, 50, "um");
        assert!(s.lines().nth(2).unwrap().matches('U').count() > 10);
    }
}
