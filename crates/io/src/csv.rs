//! Minimal CSV writer for the figure data series.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Buffered CSV writer.
pub struct CsvWriter {
    out: BufWriter<File>,
    ncol: usize,
}

impl CsvWriter {
    /// Create/overwrite `path` with the given header.
    pub fn create(path: impl AsRef<Path>, header: &[&str]) -> std::io::Result<Self> {
        let f = File::create(path)?;
        let mut out = BufWriter::new(f);
        writeln!(out, "{}", header.join(","))?;
        Ok(Self {
            out,
            ncol: header.len(),
        })
    }

    /// Write a row of formatted values.
    pub fn row(&mut self, vals: &[String]) -> std::io::Result<()> {
        assert_eq!(vals.len(), self.ncol, "CSV row width mismatch");
        writeln!(self.out, "{}", vals.join(","))
    }

    /// Write a row of f64s.
    pub fn row_f64(&mut self, vals: &[f64]) -> std::io::Result<()> {
        let v: Vec<String> = vals.iter().map(|x| format!("{x}")).collect();
        self.row(&v)
    }

    /// Flush to disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("mas_io_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        {
            let mut w = CsvWriter::create(&path, &["x", "y"]).unwrap();
            w.row_f64(&[1.0, 2.5]).unwrap();
            w.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,2.5\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let dir = std::env::temp_dir().join("mas_io_csv_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = CsvWriter::create(dir.join("t.csv"), &["x", "y"]).unwrap();
        w.row_f64(&[1.0]).unwrap();
    }
}
