//! Rendering solution cuts: binary PPM images and ASCII art (Fig. 1).

use std::io::Write;
use std::path::Path;

/// Color maps for the scalar renders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Colormap {
    /// Black-body style heat map (dark → red → yellow → white).
    Heat,
    /// Blue–white–red diverging map (signed quantities, e.g. `B_r`).
    BlueRed,
}

impl Colormap {
    /// Map `t ∈ [0,1]` to RGB.
    pub fn rgb(self, t: f64) -> [u8; 3] {
        let t = t.clamp(0.0, 1.0);
        match self {
            Colormap::Heat => {
                // Three linear segments: black→red, red→yellow, yellow→white.
                let (r, g, b) = if t < 1.0 / 3.0 {
                    (3.0 * t, 0.0, 0.0)
                } else if t < 2.0 / 3.0 {
                    (1.0, 3.0 * t - 1.0, 0.0)
                } else {
                    (1.0, 1.0, 3.0 * t - 2.0)
                };
                [(r * 255.0) as u8, (g * 255.0) as u8, (b * 255.0) as u8]
            }
            Colormap::BlueRed => {
                if t < 0.5 {
                    let s = 2.0 * t;
                    [(s * 255.0) as u8, (s * 255.0) as u8, 255]
                } else {
                    let s = 2.0 * (1.0 - t);
                    [255, (s * 255.0) as u8, (s * 255.0) as u8]
                }
            }
        }
    }
}

/// Normalize a 2-D slice `data[row][col]` to `[0,1]` over its finite range.
fn normalize(data: &[Vec<f64>]) -> (Vec<Vec<f64>>, f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for row in data {
        for &v in row {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || hi <= lo {
        lo = 0.0;
        hi = 1.0;
    }
    let span = hi - lo;
    let norm = data
        .iter()
        .map(|row| row.iter().map(|&v| ((v - lo) / span).clamp(0.0, 1.0)).collect())
        .collect();
    (norm, lo, hi)
}

/// Write a binary PPM (P6) of `data[row][col]` with the given color map,
/// scaling each pixel `scale×scale`. Returns `(min, max)` of the data.
pub fn render_ppm(
    path: impl AsRef<Path>,
    data: &[Vec<f64>],
    cmap: Colormap,
    scale: usize,
) -> std::io::Result<(f64, f64)> {
    assert!(!data.is_empty() && !data[0].is_empty(), "empty image");
    let scale = scale.max(1);
    let (norm, lo, hi) = normalize(data);
    let h = norm.len() * scale;
    let w = norm[0].len() * scale;
    let mut buf = Vec::with_capacity(w * h * 3 + 32);
    buf.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
    for row in &norm {
        assert_eq!(row.len() * scale, w, "ragged image rows");
        for _ in 0..scale {
            // (rows are repeated `scale` times below; columns here)
        }
        // Build one scan line, then repeat it.
        let mut line = Vec::with_capacity(w * 3);
        for &t in row {
            let px = cmap.rgb(t);
            for _ in 0..scale {
                line.extend_from_slice(&px);
            }
        }
        for _ in 0..scale {
            buf.extend_from_slice(&line);
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&buf)?;
    Ok((lo, hi))
}

/// Render `data[row][col]` as ASCII art with a 10-level ramp. Returns the
/// multi-line string (used in terminal reports).
pub fn render_ascii(data: &[Vec<f64>]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let (norm, lo, hi) = normalize(data);
    let mut out = String::new();
    for row in &norm {
        for &t in row {
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out.push_str(&format!("[min = {lo:.4}, max = {hi:.4}]\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_image() -> Vec<Vec<f64>> {
        (0..4)
            .map(|r| (0..8).map(|c| (r * 8 + c) as f64).collect())
            .collect()
    }

    #[test]
    fn ppm_has_correct_header_and_size() {
        let dir = std::env::temp_dir().join("mas_io_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        let (lo, hi) = render_ppm(&path, &ramp_image(), Colormap::Heat, 2).unwrap();
        assert_eq!((lo, hi), (0.0, 31.0));
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P6\n16 8\n255\n";
        assert!(bytes.starts_with(header));
        assert_eq!(bytes.len(), header.len() + 16 * 8 * 3);
    }

    #[test]
    fn heat_map_endpoints() {
        assert_eq!(Colormap::Heat.rgb(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Heat.rgb(1.0), [255, 255, 255]);
        let mid = Colormap::Heat.rgb(0.5);
        assert_eq!(mid[0], 255);
        assert!(mid[2] == 0);
    }

    #[test]
    fn bluered_is_diverging() {
        assert_eq!(Colormap::BlueRed.rgb(0.0), [0, 0, 255]);
        assert_eq!(Colormap::BlueRed.rgb(1.0), [255, 0, 0]);
        assert_eq!(Colormap::BlueRed.rgb(0.5), [255, 255, 255]);
    }

    #[test]
    fn ascii_render_shape() {
        let s = render_ascii(&ramp_image());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "4 rows + range line");
        assert_eq!(lines[0].len(), 8);
        assert!(lines[0].starts_with(' '), "minimum maps to blank");
        assert!(lines[3].ends_with('@'), "maximum maps to @");
    }

    #[test]
    fn constant_image_does_not_divide_by_zero() {
        let img = vec![vec![3.0; 4]; 2];
        let s = render_ascii(&img);
        assert!(s.contains("[min = 3.0000, max = 4.0000]") || s.contains("max"));
    }
}
