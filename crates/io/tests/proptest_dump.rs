//! Property-based test of dump integrity checking: a valid dump with any
//! single byte flipped must never pass [`validate_dump`]. This is the
//! guarantee the run supervisor's slot selection leans on — a bit-rotted
//! or torn rotation slot is always detected, never silently restored.

use mas_field::Array3;
use mas_io::{validate_dump, write_fields, DumpHeader};
use proptest::prelude::*;

fn sample_dump_bytes(step: u64, time: f64, epoch: u64, fill: f64) -> Vec<u8> {
    let dir = std::env::temp_dir().join("mas_io_proptest_dump");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("base_{step}_{epoch}.dump"));
    let mut a = Array3::zeros(3, 4, 5);
    let mut b = Array3::zeros(2, 3, 2);
    for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
        *v = fill + i as f64 * 0.125;
    }
    for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
        *v = -fill - i as f64;
    }
    write_fields(&p, DumpHeader { step, time, epoch }, &[("rho", &a), ("temp", &b)]).unwrap();
    let bytes = std::fs::read(&p).unwrap();
    std::fs::remove_file(&p).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip one byte anywhere — magic, header, epoch, names, dims,
    /// payload, or the CRC trailer itself — and validation must fail.
    #[test]
    fn single_flipped_byte_never_validates(
        step in 0u64..1000,
        epoch in 0u64..8,
        fill in -100.0f64..100.0,
        offset_seed in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let good = sample_dump_bytes(step, 0.5, epoch, fill);
        let offset = offset_seed % good.len();
        let mut corrupt = good.clone();
        corrupt[offset] ^= 1u8 << bit;

        let dir = std::env::temp_dir().join("mas_io_proptest_dump");
        std::fs::create_dir_all(&dir).unwrap();
        let pc = dir.join(format!("flip_{step}_{offset}_{bit}.dump"));
        std::fs::write(&pc, &corrupt).unwrap();
        let result = validate_dump(&pc);
        std::fs::remove_file(&pc).ok();

        prop_assert!(
            result.is_err(),
            "flipping bit {bit} of byte {offset}/{} went undetected",
            good.len()
        );
        // And the pristine bytes still validate (the flip, not the
        // plumbing, is what fails).
        let pg = dir.join(format!("good_{step}_{offset}_{bit}.dump"));
        std::fs::write(&pg, &good).unwrap();
        let h = validate_dump(&pg);
        std::fs::remove_file(&pg).ok();
        prop_assert!(h.is_ok());
        prop_assert_eq!(h.unwrap().epoch, epoch);
    }
}
