#![warn(missing_docs)]
//! # mas-field
//!
//! Ghost-extended 3-D arrays and staggered fields — the data containers of
//! the `mas-rs` MHD solver.
//!
//! Design notes:
//!
//! * Storage is a single contiguous `Vec<f64>` in **Fortran order**
//!   (`i` fastest), matching MAS's memory layout — the layout matters
//!   because the performance model charges kernels by bytes streamed, and
//!   the halo pack/unpack paths slice φ-planes, which are the *slowest*
//!   index and therefore contiguous 2-D blocks.
//! * Every [`Array3`] has the same ghost width on all axes
//!   ([`mas_grid::NGHOST`]); staggered logical dimensions come from
//!   [`mas_grid::Stagger::dims`].
//! * A [`Field`] pairs an array with its staggering and (optionally) the
//!   model [`gpusim::BufferId`] assigned when the field is registered with
//!   a `gpusim` memory manager — the physics code passes those ids to the
//!   `stdpar` launch API so unified-memory paging can be modeled.

pub mod array3;
pub mod field;
pub mod halo;
pub mod norms;
pub mod parview;

pub use array3::Array3;
pub use parview::{
    arm_captures, capture_begin, capture_end, disarm_captures, instrumentation_requested,
    set_legacy_gate, ParView3, ViewAccess,
};
pub use field::{Field, VecField};
pub use halo::{pack_phi_plane, unpack_phi_plane, PhiHalo};
pub use norms::{dot, linf_diff, linf_norm, rel_l2_diff, weighted_l2};
