//! [`ParView3`]: a shared-write view of an [`Array3`] for
//! `do concurrent`-style kernel bodies.
//!
//! The `stdpar` host engine executes `Par::loop3` bodies as `Fn + Sync`
//! closures on multiple threads, so a body can no longer capture
//! `&mut Array3`. A `ParView3` is the escape hatch: it is created from a
//! unique borrow of the array (so no other access can exist for its
//! lifetime), is `Sync`, and allows writes through `&self` under the
//! same contract Fortran's `do concurrent` imposes on the real code:
//!
//! * distinct iterations must not write the same element, and
//! * an iteration must not read an element that another *concurrent*
//!   iteration writes. The engine tiles the outermost (k) axis and runs
//!   each k-plane in-order on one thread, so reads of the written array
//!   at i/j offsets (same k) stay well-defined; bodies that read at
//!   k-offsets must declare their site `Site::serial()`.
//!
//! Violating the contract on a parallel site is a data race in the
//! model's semantics just as it is undefined behaviour in the Fortran
//! original — the tiling audit in `mas-mhd` exists to prevent it.

use crate::Array3;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One recorded element access made through a [`ParView3`] while a
/// capture is active on the current thread (see [`capture_begin`]).
///
/// `base` is an opaque buffer identity (stable for the lifetime of the
/// underlying allocation); consumers should map it to a small ordinal
/// before reporting rather than surfacing the raw value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewAccess {
    /// Opaque identity of the buffer the view points into.
    pub base: usize,
    /// Storage index along the fastest axis.
    pub i: usize,
    /// Storage index along the middle axis.
    pub j: usize,
    /// Storage index along the slowest (tiled) axis.
    pub k: usize,
    /// `true` for a write (or the write half of `add`), `false` for a read.
    pub write: bool,
}

/// Process-wide count of threads with an active capture. Acts as a fast
/// gate so that `get`/`set`/`add` pay only one relaxed load plus a
/// predicted-untaken branch when no auditor is running anywhere.
static CAPTURES_ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The current thread's capture log, if one is active.
    static CAPTURE_LOG: RefCell<Option<Vec<ViewAccess>>> = const { RefCell::new(None) };
}

/// Begin recording [`ParView3`] accesses made *on the current thread*
/// into a fresh log. Nesting is not supported: a second `capture_begin`
/// without an intervening [`capture_end`] replaces the log.
///
/// This is the hook the `stdpar` race auditor uses to observe kernel
/// bodies; production runs never call it, and the per-access cost while
/// no capture exists anywhere in the process is a single relaxed atomic
/// load.
pub fn capture_begin() {
    CAPTURE_LOG.with(|log| {
        let mut slot = log.borrow_mut();
        if slot.is_none() {
            CAPTURES_ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(Vec::new());
    });
}

/// Stop recording on the current thread and return the accesses seen
/// since the matching [`capture_begin`]. Returns an empty vector if no
/// capture was active.
pub fn capture_end() -> Vec<ViewAccess> {
    CAPTURE_LOG.with(|log| {
        let mut slot = log.borrow_mut();
        match slot.take() {
            Some(v) => {
                CAPTURES_ACTIVE.fetch_sub(1, Ordering::Relaxed);
                v
            }
            None => Vec::new(),
        }
    })
}

/// Record one access if this thread has an active capture. The common
/// (audit-off) path is a single relaxed load and a fall-through branch.
#[inline(always)]
fn maybe_record(base: usize, i: usize, j: usize, k: usize, write: bool) {
    if CAPTURES_ACTIVE.load(Ordering::Relaxed) != 0 {
        record_slow(base, i, j, k, write);
    }
}

/// Out-of-line slow path: append to the thread-local log when present.
/// Threads without a live capture (e.g. other ranks while one rank
/// audits) fall through without recording.
#[cold]
#[inline(never)]
fn record_slow(base: usize, i: usize, j: usize, k: usize, write: bool) {
    CAPTURE_LOG.with(|log| {
        if let Some(v) = log.borrow_mut().as_mut() {
            v.push(ViewAccess {
                base,
                i,
                j,
                k,
                write,
            });
        }
    });
}

/// Shared-write view over an [`Array3`]'s storage (see module docs).
///
/// Obtained from [`Array3::par_view`]; borrows the array mutably for its
/// lifetime, so all other access paths are frozen while it exists.
#[derive(Clone, Copy)]
pub struct ParView3<'a> {
    ptr: *mut f64,
    s1: usize,
    s2: usize,
    s3: usize,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: the view behaves like `&mut [f64]` split element-wise across
// iterations; the caller upholds the disjoint-write contract above and
// the unique borrow prevents aliasing from outside the kernel body.
unsafe impl Send for ParView3<'_> {}
unsafe impl Sync for ParView3<'_> {}

impl<'a> ParView3<'a> {
    pub(crate) fn new(a: &'a mut Array3) -> Self {
        let (s1, s2, s3) = (a.s1, a.s2, a.s3);
        let s = a.as_mut_slice();
        ParView3 {
            ptr: s.as_mut_ptr(),
            s1,
            s2,
            s3,
            len: s.len(),
            _marker: PhantomData,
        }
    }

    /// Flat index of `(i, j, k)` (storage indices, i fastest).
    #[inline(always)]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.s1 && j < self.s2 && k < self.s3);
        i + self.s1 * (j + self.s2 * k)
    }

    /// Storage extent along `i` (fastest axis), ghosts included.
    #[inline(always)]
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// Storage extent along `j`, ghosts included.
    #[inline(always)]
    pub fn s2(&self) -> usize {
        self.s2
    }

    /// Storage extent along `k` (slowest axis), ghosts included.
    #[inline(always)]
    pub fn s3(&self) -> usize {
        self.s3
    }

    /// Read element `(i, j, k)`.
    ///
    /// Under the iteration-independence contract this must not target an
    /// element written by a concurrent iteration (other k-planes on a
    /// tiled site).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        maybe_record(self.ptr as usize, i, j, k, false);
        // SAFETY: in-bounds (asserted in debug); caller upholds the
        // no-concurrent-writer contract.
        unsafe { *self.ptr.add(ix) }
    }

    /// Write element `(i, j, k)` — each iteration its own points only.
    #[inline(always)]
    pub fn set(&self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        maybe_record(self.ptr as usize, i, j, k, true);
        // SAFETY: as for `get`; the element belongs to this iteration.
        unsafe { *self.ptr.add(ix) = v }
    }

    /// Add to element `(i, j, k)` — each iteration its own points only.
    #[inline(always)]
    pub fn add(&self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        // A read-modify-write is both a read and a write for the
        // iteration-independence contract.
        maybe_record(self.ptr as usize, i, j, k, false);
        maybe_record(self.ptr as usize, i, j, k, true);
        // SAFETY: read-modify-write of an element no other iteration
        // touches (contract above).
        unsafe { *self.ptr.add(ix) += v }
    }
}

impl Array3 {
    /// A [`ParView3`] over this array for a parallel kernel body. The
    /// array is mutably borrowed for the view's lifetime; see the
    /// `parview` module docs for the iteration-independence contract.
    pub fn par_view(&mut self) -> ParView3<'_> {
        ParView3::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reads_and_writes_match_array() {
        let mut a = Array3::zeros(3, 4, 5);
        {
            let v = a.par_view();
            v.set(1, 2, 3, 7.5);
            v.add(1, 2, 3, 0.5);
            assert_eq!(v.get(1, 2, 3), 8.0);
        }
        assert_eq!(a.get(1, 2, 3), 8.0);
    }

    #[test]
    fn view_is_sync_and_usable_across_threads_on_disjoint_planes() {
        let mut a = Array3::zeros(4, 4, 8);
        let s3 = a.s3;
        {
            let v = a.par_view();
            std::thread::scope(|s| {
                for k in 0..s3 {
                    s.spawn(move || {
                        for j in 0..4 {
                            for i in 0..4 {
                                v.set(i, j, k, (i + 10 * j + 100 * k) as f64);
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(a.get(2, 3, 5), (2 + 30 + 500) as f64);
    }

    #[test]
    fn capture_records_reads_writes_and_rmw() {
        let mut a = Array3::zeros(2, 2, 2);
        let v = a.par_view();
        capture_begin();
        v.set(0, 0, 0, 1.0);
        let _ = v.get(1, 1, 1);
        v.add(0, 1, 0, 2.0);
        let log = capture_end();
        // set -> 1 write; get -> 1 read; add -> read + write.
        assert_eq!(log.len(), 4);
        assert!(log[0].write && log[0].i == 0 && log[0].j == 0 && log[0].k == 0);
        assert!(!log[1].write && log[1].i == 1 && log[1].j == 1 && log[1].k == 1);
        assert!(!log[2].write && log[2].i == 0 && log[2].j == 1 && log[2].k == 0);
        assert!(log[3].write && log[3].i == 0 && log[3].j == 1 && log[3].k == 0);
        assert_eq!(log[0].base, log[1].base);
        // No capture active: nothing recorded, end returns empty.
        v.set(1, 0, 0, 3.0);
        assert!(capture_end().is_empty());
    }

    #[test]
    fn capture_is_thread_local() {
        let mut a = Array3::zeros(2, 2, 2);
        let v = a.par_view();
        capture_begin();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Other threads see the global gate but have no log;
                // their accesses must not land in ours.
                v.set(0, 0, 1, 5.0);
            });
        });
        v.set(0, 0, 0, 1.0);
        let log = capture_end();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].k, 0);
    }
}
