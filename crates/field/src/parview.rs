//! [`ParView3`]: a shared-write view of an [`Array3`] for
//! `do concurrent`-style kernel bodies.
//!
//! The `stdpar` host engine executes `Par::loop3` bodies as `Fn + Sync`
//! closures on multiple threads, so a body can no longer capture
//! `&mut Array3`. A `ParView3` is the escape hatch: it is created from a
//! unique borrow of the array (so no other access can exist for its
//! lifetime), is `Sync`, and allows writes through `&self` under the
//! same contract Fortran's `do concurrent` imposes on the real code:
//!
//! * distinct iterations must not write the same element, and
//! * an iteration must not read an element that another *concurrent*
//!   iteration writes. The engine tiles the outermost (k) axis and runs
//!   each k-plane in-order on one thread, so reads of the written array
//!   at i/j offsets (same k) stay well-defined; bodies that read at
//!   k-offsets must declare their site `Site::serial()`.
//!
//! Violating the contract on a parallel site is a data race in the
//! model's semantics just as it is undefined behaviour in the Fortran
//! original — the tiling audit in `mas-mhd` exists to prevent it.

use crate::Array3;
use std::marker::PhantomData;

/// Shared-write view over an [`Array3`]'s storage (see module docs).
///
/// Obtained from [`Array3::par_view`]; borrows the array mutably for its
/// lifetime, so all other access paths are frozen while it exists.
#[derive(Clone, Copy)]
pub struct ParView3<'a> {
    ptr: *mut f64,
    s1: usize,
    s2: usize,
    s3: usize,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: the view behaves like `&mut [f64]` split element-wise across
// iterations; the caller upholds the disjoint-write contract above and
// the unique borrow prevents aliasing from outside the kernel body.
unsafe impl Send for ParView3<'_> {}
unsafe impl Sync for ParView3<'_> {}

impl<'a> ParView3<'a> {
    pub(crate) fn new(a: &'a mut Array3) -> Self {
        let (s1, s2, s3) = (a.s1, a.s2, a.s3);
        let s = a.as_mut_slice();
        ParView3 {
            ptr: s.as_mut_ptr(),
            s1,
            s2,
            s3,
            len: s.len(),
            _marker: PhantomData,
        }
    }

    /// Flat index of `(i, j, k)` (storage indices, i fastest).
    #[inline(always)]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.s1 && j < self.s2 && k < self.s3);
        i + self.s1 * (j + self.s2 * k)
    }

    /// Storage extent along `i` (fastest axis), ghosts included.
    #[inline(always)]
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// Storage extent along `j`, ghosts included.
    #[inline(always)]
    pub fn s2(&self) -> usize {
        self.s2
    }

    /// Storage extent along `k` (slowest axis), ghosts included.
    #[inline(always)]
    pub fn s3(&self) -> usize {
        self.s3
    }

    /// Read element `(i, j, k)`.
    ///
    /// Under the iteration-independence contract this must not target an
    /// element written by a concurrent iteration (other k-planes on a
    /// tiled site).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        // SAFETY: in-bounds (asserted in debug); caller upholds the
        // no-concurrent-writer contract.
        unsafe { *self.ptr.add(ix) }
    }

    /// Write element `(i, j, k)` — each iteration its own points only.
    #[inline(always)]
    pub fn set(&self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        // SAFETY: as for `get`; the element belongs to this iteration.
        unsafe { *self.ptr.add(ix) = v }
    }

    /// Add to element `(i, j, k)` — each iteration its own points only.
    #[inline(always)]
    pub fn add(&self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        // SAFETY: read-modify-write of an element no other iteration
        // touches (contract above).
        unsafe { *self.ptr.add(ix) += v }
    }
}

impl Array3 {
    /// A [`ParView3`] over this array for a parallel kernel body. The
    /// array is mutably borrowed for the view's lifetime; see the
    /// `parview` module docs for the iteration-independence contract.
    pub fn par_view(&mut self) -> ParView3<'_> {
        ParView3::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reads_and_writes_match_array() {
        let mut a = Array3::zeros(3, 4, 5);
        {
            let v = a.par_view();
            v.set(1, 2, 3, 7.5);
            v.add(1, 2, 3, 0.5);
            assert_eq!(v.get(1, 2, 3), 8.0);
        }
        assert_eq!(a.get(1, 2, 3), 8.0);
    }

    #[test]
    fn view_is_sync_and_usable_across_threads_on_disjoint_planes() {
        let mut a = Array3::zeros(4, 4, 8);
        let s3 = a.s3;
        {
            let v = a.par_view();
            std::thread::scope(|s| {
                for k in 0..s3 {
                    s.spawn(move || {
                        for j in 0..4 {
                            for i in 0..4 {
                                v.set(i, j, k, (i + 10 * j + 100 * k) as f64);
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(a.get(2, 3, 5), (2 + 30 + 500) as f64);
    }
}
