//! [`ParView3`]: a shared-write view of an [`Array3`] for
//! `do concurrent`-style kernel bodies.
//!
//! The `stdpar` host engine executes `Par::loop3` bodies as `Fn + Sync`
//! closures on multiple threads, so a body can no longer capture
//! `&mut Array3`. A `ParView3` is the escape hatch: it is created from a
//! unique borrow of the array (so no other access can exist for its
//! lifetime), is `Sync`, and allows writes through `&self` under the
//! same contract Fortran's `do concurrent` imposes on the real code:
//!
//! * distinct iterations must not write the same element, and
//! * an iteration must not read an element that another *concurrent*
//!   iteration writes. The engine tiles the outermost (k) axis and runs
//!   each k-plane in-order on one thread, so reads of the written array
//!   at i/j offsets (same k) stay well-defined; bodies that read at
//!   k-offsets must declare their site `Site::serial()`.
//!
//! Violating the contract on a parallel site is a data race in the
//! model's semantics just as it is undefined behaviour in the Fortran
//! original — the tiling audit in `mas-mhd` exists to prevent it.

use crate::Array3;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One recorded element access made through a [`ParView3`] while a
/// capture is active on the current thread (see [`capture_begin`]).
///
/// `base` is an opaque buffer identity (stable for the lifetime of the
/// underlying allocation); consumers should map it to a small ordinal
/// before reporting rather than surfacing the raw value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewAccess {
    /// Opaque identity of the buffer the view points into.
    pub base: usize,
    /// Storage index along the fastest axis.
    pub i: usize,
    /// Storage index along the middle axis.
    pub j: usize,
    /// Storage index along the slowest (tiled) axis.
    pub k: usize,
    /// `true` for a write (or the write half of `add`), `false` for a read.
    pub write: bool,
}

/// Process-wide count of threads with an active capture. Consulted
/// per-access only by *instrumented* views (see [`arm_captures`]).
static CAPTURES_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of armed auditors (see [`arm_captures`]). While
/// nonzero, newly constructed views are instrumented even before any
/// capture begins — this is how the `stdpar` race auditor observes
/// kernel bodies whose views are built before the audited launch.
static CAPTURES_ARMED: AtomicUsize = AtomicUsize::new(0);

/// When nonzero, newly constructed views reinstate the historical
/// per-access gate (one relaxed load of [`CAPTURES_ACTIVE`] on every
/// `get`/`set`/`add`). The benchmark baseline's `legacy` mode uses this
/// to measure the cost the construction-time gate removed.
static LEGACY_GATE: AtomicUsize = AtomicUsize::new(0);

/// Arm access capture: views constructed from now until the matching
/// [`disarm_captures`] are *instrumented* — each `get`/`set`/`add`
/// checks for an active capture on its thread. Views constructed while
/// nothing is armed (and no capture or legacy gate is live) skip the
/// check entirely, which lets the optimizer treat kernel bodies as
/// branch-free straight-line array code. Arming nests (refcounted).
pub fn arm_captures() {
    CAPTURES_ARMED.fetch_add(1, Ordering::Relaxed);
}

/// Undo one [`arm_captures`]. Views already constructed keep whatever
/// instrumentation decision they were built with.
pub fn disarm_captures() {
    CAPTURES_ARMED.fetch_sub(1, Ordering::Relaxed);
}

/// Toggle the historical always-instrumented behaviour for newly
/// constructed views (benchmark `legacy` mode; see [`LEGACY_GATE`]).
pub fn set_legacy_gate(on: bool) {
    LEGACY_GATE.store(on as usize, Ordering::Relaxed);
}

/// Whether kernels launched now should use instrumented views
/// (`REC = true`): an auditor is armed, a capture is live somewhere, or
/// the benchmark legacy gate is on. Kernel entry points consult this
/// once per call to pick a monomorphized instantiation, so the decision
/// costs nothing per element.
pub fn instrumentation_requested() -> bool {
    CAPTURES_ARMED.load(Ordering::Relaxed) != 0
        || CAPTURES_ACTIVE.load(Ordering::Relaxed) != 0
        || LEGACY_GATE.load(Ordering::Relaxed) != 0
}

thread_local! {
    /// The current thread's capture log, if one is active.
    static CAPTURE_LOG: RefCell<Option<Vec<ViewAccess>>> = const { RefCell::new(None) };
}

/// Begin recording [`ParView3`] accesses made *on the current thread*
/// into a fresh log. Nesting is not supported: a second `capture_begin`
/// without an intervening [`capture_end`] replaces the log.
///
/// Only *instrumented* views record: a view is instrumented if, at its
/// construction, an auditor was armed ([`arm_captures`]), a capture was
/// already live anywhere, or the legacy gate was set. This is the hook
/// the `stdpar` race auditor uses to observe kernel bodies; production
/// runs never call it, and uninstrumented views cost nothing per access.
pub fn capture_begin() {
    CAPTURE_LOG.with(|log| {
        let mut slot = log.borrow_mut();
        if slot.is_none() {
            CAPTURES_ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(Vec::new());
    });
}

/// Stop recording on the current thread and return the accesses seen
/// since the matching [`capture_begin`]. Returns an empty vector if no
/// capture was active.
pub fn capture_end() -> Vec<ViewAccess> {
    CAPTURE_LOG.with(|log| {
        let mut slot = log.borrow_mut();
        match slot.take() {
            Some(v) => {
                CAPTURES_ACTIVE.fetch_sub(1, Ordering::Relaxed);
                v
            }
            None => Vec::new(),
        }
    })
}

/// Record one access if this thread has an active capture. Called only
/// from instrumented views; the capture-off path is a single relaxed
/// load and a fall-through branch (the historical cost every access
/// paid before the construction-time gate existed).
#[inline(always)]
fn maybe_record(base: usize, i: usize, j: usize, k: usize, write: bool) {
    if CAPTURES_ACTIVE.load(Ordering::Relaxed) != 0 {
        record_slow(base, i, j, k, write);
    }
}

/// Out-of-line slow path: append to the thread-local log when present.
/// Threads without a live capture (e.g. other ranks while one rank
/// audits) fall through without recording.
#[cold]
#[inline(never)]
fn record_slow(base: usize, i: usize, j: usize, k: usize, write: bool) {
    CAPTURE_LOG.with(|log| {
        if let Some(v) = log.borrow_mut().as_mut() {
            v.push(ViewAccess {
                base,
                i,
                j,
                k,
                write,
            });
        }
    });
}

/// Shared-write view over an [`Array3`]'s storage (see module docs).
///
/// Obtained from [`Array3::par_view`]; borrows the array mutably for its
/// lifetime, so all other access paths are frozen while it exists.
#[derive(Clone, Copy)]
/// The `REC` const parameter decides **at compile time** whether
/// accesses consult the capture machinery. `REC = true` (the default)
/// is the historical behaviour: every access pays one relaxed load of
/// the process-wide capture gate. `REC = false` compiles `get`/`set`/
/// `add` down to bare loads and stores, which lets the optimizer treat
/// kernel bodies as straight-line array code. Kernel entry points pick
/// the instantiation once per call via [`instrumentation_requested`].
pub struct ParView3<'a, const REC: bool = true> {
    ptr: *mut f64,
    s1: usize,
    s2: usize,
    s3: usize,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: the view behaves like `&mut [f64]` split element-wise across
// iterations; the caller upholds the disjoint-write contract above and
// the unique borrow prevents aliasing from outside the kernel body.
unsafe impl<const REC: bool> Send for ParView3<'_, REC> {}
unsafe impl<const REC: bool> Sync for ParView3<'_, REC> {}

impl<'a, const REC: bool> ParView3<'a, REC> {
    pub(crate) fn new(a: &'a mut Array3) -> Self {
        let (s1, s2, s3) = (a.s1, a.s2, a.s3);
        let s = a.as_mut_slice();
        ParView3 {
            ptr: s.as_mut_ptr(),
            s1,
            s2,
            s3,
            len: s.len(),
            _marker: PhantomData,
        }
    }

    /// Flat index of `(i, j, k)` (storage indices, i fastest).
    #[inline(always)]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.s1 && j < self.s2 && k < self.s3);
        i + self.s1 * (j + self.s2 * k)
    }

    /// Storage extent along `i` (fastest axis), ghosts included.
    #[inline(always)]
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// Storage extent along `j`, ghosts included.
    #[inline(always)]
    pub fn s2(&self) -> usize {
        self.s2
    }

    /// Storage extent along `k` (slowest axis), ghosts included.
    #[inline(always)]
    pub fn s3(&self) -> usize {
        self.s3
    }

    /// Read element `(i, j, k)`.
    ///
    /// Under the iteration-independence contract this must not target an
    /// element written by a concurrent iteration (other k-planes on a
    /// tiled site).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        if REC {
            maybe_record(self.ptr as usize, i, j, k, false);
        }
        // SAFETY: in-bounds (asserted in debug); caller upholds the
        // no-concurrent-writer contract.
        unsafe { *self.ptr.add(ix) }
    }

    /// Write element `(i, j, k)` — each iteration its own points only.
    #[inline(always)]
    pub fn set(&self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        if REC {
            maybe_record(self.ptr as usize, i, j, k, true);
        }
        // SAFETY: as for `get`; the element belongs to this iteration.
        unsafe { *self.ptr.add(ix) = v }
    }

    /// Add to element `(i, j, k)` — each iteration its own points only.
    #[inline(always)]
    pub fn add(&self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        debug_assert!(ix < self.len);
        // A read-modify-write is both a read and a write for the
        // iteration-independence contract.
        if REC {
            maybe_record(self.ptr as usize, i, j, k, false);
            maybe_record(self.ptr as usize, i, j, k, true);
        }
        // SAFETY: read-modify-write of an element no other iteration
        // touches (contract above).
        unsafe { *self.ptr.add(ix) += v }
    }

    /// Borrow the contiguous innermost-axis (i) window `i0..i1` of the
    /// row at `(j, k)` for reading — the row-sliced kernel path.
    ///
    /// Instrumented views (`REC = true`) record one read per element of
    /// the window at call time, so the race auditor sees the same
    /// element-granular footprint the scalar path produces.
    #[inline]
    pub fn row(&self, i0: usize, i1: usize, j: usize, k: usize) -> &'a [f64] {
        debug_assert!(i0 <= i1 && i1 <= self.s1 && j < self.s2 && k < self.s3);
        if REC {
            for i in i0..i1 {
                maybe_record(self.ptr as usize, i, j, k, false);
            }
        }
        let start = i0 + self.s1 * (j + self.s2 * k);
        debug_assert!(start + (i1 - i0) <= self.len);
        // SAFETY: in-bounds (asserted in debug); the caller upholds the
        // iteration-independence contract (no concurrent writer of these
        // elements), so the shared borrow is valid for 'a.
        unsafe { std::slice::from_raw_parts(self.ptr.add(start), i1 - i0) }
    }

    /// Borrow the contiguous innermost-axis (i) window `i0..i1` of the
    /// row at `(j, k)` for writing — the row-sliced kernel path. Each
    /// iteration of a tiled site must take only rows it owns (its own
    /// `(j, k)`), exactly as `set`/`add` allow only own-point writes;
    /// two live `row_mut` windows must never overlap.
    ///
    /// Instrumented views record a read *and* a write per element
    /// (callers may read-modify-write through the slice, so the
    /// conservative footprint is both), matching what a scalar `add`
    /// records.
    #[inline]
    #[allow(clippy::mut_from_ref)] // shared-write view; see the contract above
    pub fn row_mut(&self, i0: usize, i1: usize, j: usize, k: usize) -> &'a mut [f64] {
        debug_assert!(i0 <= i1 && i1 <= self.s1 && j < self.s2 && k < self.s3);
        if REC {
            for i in i0..i1 {
                maybe_record(self.ptr as usize, i, j, k, false);
                maybe_record(self.ptr as usize, i, j, k, true);
            }
        }
        let start = i0 + self.s1 * (j + self.s2 * k);
        debug_assert!(start + (i1 - i0) <= self.len);
        // SAFETY: in-bounds (asserted in debug); exclusivity over the
        // window is the caller's contract (own rows only, no overlap),
        // the same discipline `set` imposes per element.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), i1 - i0) }
    }
}

impl Array3 {
    /// A [`ParView3`] over this array for a parallel kernel body. The
    /// array is mutably borrowed for the view's lifetime; see the
    /// `parview` module docs for the iteration-independence contract.
    ///
    /// The returned view is instrumented (`REC = true`, the historical
    /// behaviour). Hot kernels that have a monomorphized uninstrumented
    /// variant use [`Array3::par_view_as`] instead.
    pub fn par_view(&mut self) -> ParView3<'_> {
        ParView3::new(self)
    }

    /// A [`ParView3`] with the instrumentation decision made at compile
    /// time. Kernel entry points choose `REC` once per call from
    /// [`instrumentation_requested`]; `REC = false` views compile to
    /// bare loads/stores (no capture-gate check per access).
    pub fn par_view_as<const REC: bool>(&mut self) -> ParView3<'_, REC> {
        ParView3::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reads_and_writes_match_array() {
        let mut a = Array3::zeros(3, 4, 5);
        {
            let v = a.par_view();
            v.set(1, 2, 3, 7.5);
            v.add(1, 2, 3, 0.5);
            assert_eq!(v.get(1, 2, 3), 8.0);
        }
        assert_eq!(a.get(1, 2, 3), 8.0);
    }

    #[test]
    fn view_is_sync_and_usable_across_threads_on_disjoint_planes() {
        let mut a = Array3::zeros(4, 4, 8);
        let s3 = a.s3;
        {
            let v = a.par_view();
            std::thread::scope(|s| {
                for k in 0..s3 {
                    s.spawn(move || {
                        for j in 0..4 {
                            for i in 0..4 {
                                v.set(i, j, k, (i + 10 * j + 100 * k) as f64);
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(a.get(2, 3, 5), (2 + 30 + 500) as f64);
    }

    #[test]
    fn capture_records_reads_writes_and_rmw() {
        let mut a = Array3::zeros(2, 2, 2);
        capture_begin();
        let v = a.par_view();
        v.set(0, 0, 0, 1.0);
        let _ = v.get(1, 1, 1);
        v.add(0, 1, 0, 2.0);
        let log = capture_end();
        // set -> 1 write; get -> 1 read; add -> read + write.
        assert_eq!(log.len(), 4);
        assert!(log[0].write && log[0].i == 0 && log[0].j == 0 && log[0].k == 0);
        assert!(!log[1].write && log[1].i == 1 && log[1].j == 1 && log[1].k == 1);
        assert!(!log[2].write && log[2].i == 0 && log[2].j == 1 && log[2].k == 0);
        assert!(log[3].write && log[3].i == 0 && log[3].j == 1 && log[3].k == 0);
        assert_eq!(log[0].base, log[1].base);
        // No capture active: nothing recorded, end returns empty.
        v.set(1, 0, 0, 3.0);
        assert!(capture_end().is_empty());
    }

    #[test]
    fn capture_is_thread_local() {
        let mut a = Array3::zeros(2, 2, 2);
        capture_begin();
        let v = a.par_view();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Other threads see the global gate but have no log;
                // their accesses must not land in ours.
                v.set(0, 0, 1, 5.0);
            });
        });
        v.set(0, 0, 0, 1.0);
        let log = capture_end();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].k, 0);
    }

    #[test]
    fn uninstrumented_views_never_record() {
        let mut a = Array3::zeros(2, 2, 2);
        let mut b = Array3::zeros(2, 2, 2);
        {
            // `REC = false`: bare loads/stores, invisible to captures.
            let raw = a.par_view_as::<false>();
            let hot = b.par_view();
            capture_begin();
            raw.set(0, 0, 0, 1.0);
            raw.add(0, 0, 0, 0.5);
            let _ = raw.get(0, 0, 0);
            hot.set(0, 0, 1, 2.0);
            let log = capture_end();
            assert_eq!(log.len(), 1, "only the instrumented view records");
            assert_eq!(log[0].k, 1);
        }
        // The accesses themselves still happen.
        assert_eq!(a.get(0, 0, 0), 1.5);
    }

    #[test]
    fn rows_alias_the_same_storage_as_point_access() {
        let mut a = Array3::zeros(4, 3, 3);
        let s1 = a.s1;
        {
            let v = a.par_view_as::<false>();
            let w = v.row_mut(1, s1 - 1, 2, 3);
            for (t, x) in w.iter_mut().enumerate() {
                *x = 10.0 + t as f64;
            }
            let r = v.row(1, s1 - 1, 2, 3);
            assert_eq!(r[0], 10.0);
            // Shifted window: the stencil neighbour view of the same row.
            let shifted = v.row(2, s1, 2, 3);
            assert_eq!(shifted[0], 11.0);
        }
        assert_eq!(a.get(1, 2, 3), 10.0);
        assert_eq!(a.get(2, 2, 3), 11.0);
        assert_eq!(a.row(1, 3, 2, 3), &[10.0, 11.0]);
    }

    #[test]
    fn instrumented_rows_record_per_element_footprints() {
        let mut a = Array3::zeros(2, 2, 2);
        capture_begin();
        let v = a.par_view();
        let _ = v.row(1, 3, 0, 1);
        let _ = v.row_mut(0, 2, 1, 0);
        let log = capture_end();
        // row -> 2 reads; row_mut -> (read + write) per element.
        assert_eq!(log.len(), 6);
        assert!(log[..2].iter().all(|r| !r.write && r.j == 0 && r.k == 1));
        assert_eq!((log[0].i, log[1].i), (1, 2));
        assert_eq!(log[2..].iter().filter(|r| r.write).count(), 2);
        assert!(log[2..].iter().all(|r| r.j == 1 && r.k == 0));
    }

    #[test]
    fn instrumentation_requested_tracks_arm_capture_and_legacy() {
        // Positive assertions only: sibling tests capture concurrently,
        // so a quiet global state cannot be assumed here.
        arm_captures();
        assert!(instrumentation_requested());
        disarm_captures();
        set_legacy_gate(true);
        assert!(instrumentation_requested());
        set_legacy_gate(false);
        capture_begin();
        assert!(instrumentation_requested());
        let _ = capture_end();
    }
}
