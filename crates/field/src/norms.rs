//! Norms and inner products over index blocks (serial reference versions).
//!
//! These are *host-side* reductions used by tests, diagnostics and the
//! setup phase. The solver's own reductions go through `stdpar` so they are
//! executed (and charged) under the active code-version policy.

use crate::Array3;
use mas_grid::IndexSpace3;

/// Dot product `⟨a, b⟩` over a block.
pub fn dot(a: &Array3, b: &Array3, blk: &IndexSpace3) -> f64 {
    let mut s = 0.0;
    blk.for_each(|i, j, k| s += a.get(i, j, k) * b.get(i, j, k));
    s
}

/// `max |a|` over a block.
pub fn linf_norm(a: &Array3, blk: &IndexSpace3) -> f64 {
    a.max_abs(blk)
}

/// `max |a - b|` over a block.
pub fn linf_diff(a: &Array3, b: &Array3, blk: &IndexSpace3) -> f64 {
    let mut m = 0.0_f64;
    blk.for_each(|i, j, k| m = m.max((a.get(i, j, k) - b.get(i, j, k)).abs()));
    m
}

/// Relative L2 difference `‖a-b‖₂ / ‖b‖₂` over a block (0 if both zero).
pub fn rel_l2_diff(a: &Array3, b: &Array3, blk: &IndexSpace3) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    blk.for_each(|i, j, k| {
        let d = a.get(i, j, k) - b.get(i, j, k);
        num += d * d;
        den += b.get(i, j, k) * b.get(i, j, k);
    });
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Volume-weighted L2 norm `sqrt(Σ w a²)` with a per-point weight closure.
pub fn weighted_l2(a: &Array3, blk: &IndexSpace3, w: impl Fn(usize, usize, usize) -> f64) -> f64 {
    let mut s = 0.0;
    blk.for_each(|i, j, k| {
        let v = a.get(i, j, k);
        s += w(i, j, k) * v * v;
    });
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk() -> IndexSpace3 {
        Array3::zeros(2, 2, 2).interior()
    }

    #[test]
    fn dot_of_constants() {
        let a = Array3::constant(2, 2, 2, 2.0);
        let b = Array3::constant(2, 2, 2, 3.0);
        assert_eq!(dot(&a, &b, &blk()), 48.0);
    }

    #[test]
    fn rel_l2_zero_for_identical() {
        let a = Array3::constant(2, 2, 2, 1.5);
        assert_eq!(rel_l2_diff(&a, &a, &blk()), 0.0);
    }

    #[test]
    fn rel_l2_infinite_when_reference_zero() {
        let a = Array3::constant(2, 2, 2, 1.0);
        let z = Array3::zeros(2, 2, 2);
        assert_eq!(rel_l2_diff(&a, &z, &blk()), f64::INFINITY);
        assert_eq!(rel_l2_diff(&z, &z, &blk()), 0.0);
    }

    #[test]
    fn linf_diff_picks_largest() {
        let mut a = Array3::zeros(2, 2, 2);
        let b = Array3::zeros(2, 2, 2);
        a.set(1, 1, 1, 0.5);
        a.set(2, 2, 2, -2.0);
        assert_eq!(linf_diff(&a, &b, &blk()), 2.0);
    }

    #[test]
    fn weighted_l2_matches_manual() {
        let a = Array3::constant(2, 2, 2, 2.0);
        let n = weighted_l2(&a, &blk(), |_, _, _| 0.25);
        assert!((n - (8.0_f64 * 0.25 * 4.0).sqrt()).abs() < 1e-14);
    }
}
