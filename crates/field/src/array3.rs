//! Contiguous ghost-extended 3-D arrays in Fortran (i-fastest) order.

use mas_grid::{IndexSpace3, NGHOST};

/// A dense 3-D array of `f64` with `NGHOST` ghost layers on every axis.
///
/// Logical (ghost-free) dimensions are `(n1, n2, n3)`; storage dimensions
/// are `(n1+2g, n2+2g, n3+2g)`. Index `(i, j, k)` is a *storage* index
/// (ghost-extended), so interior points start at `NGHOST`.
#[derive(Clone, Debug, PartialEq)]
pub struct Array3 {
    /// Logical dimension (without ghosts) along axis 1.
    pub n1: usize,
    /// Logical dimension along axis 2.
    pub n2: usize,
    /// Logical dimension along axis 3.
    pub n3: usize,
    /// Storage dimension (with ghosts) along axis 1.
    pub s1: usize,
    /// Storage dimension along axis 2.
    pub s2: usize,
    /// Storage dimension along axis 3.
    pub s3: usize,
    data: Vec<f64>,
}

impl Array3 {
    /// Zero-initialized array of logical dims `(n1, n2, n3)`.
    pub fn zeros(n1: usize, n2: usize, n3: usize) -> Self {
        let (s1, s2, s3) = (n1 + 2 * NGHOST, n2 + 2 * NGHOST, n3 + 2 * NGHOST);
        Self {
            n1,
            n2,
            n3,
            s1,
            s2,
            s3,
            data: vec![0.0; s1 * s2 * s3],
        }
    }

    /// Array filled with a constant.
    pub fn constant(n1: usize, n2: usize, n3: usize, v: f64) -> Self {
        let mut a = Self::zeros(n1, n2, n3);
        a.fill(v);
        a
    }

    /// Flat storage length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false — arrays are never empty (dims ≥ 1 enforced by `zeros`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage bytes (for buffer registration with the device model).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Flat index of `(i, j, k)` (storage indices).
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.s1 && j < self.s2 && k < self.s3);
        i + self.s1 * (j + self.s2 * k)
    }

    /// Read element.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Write element.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    /// Add to element.
    #[inline(always)]
    pub fn add(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        self.data[ix] += v;
    }

    /// Raw storage (tests, I/O).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill the whole storage (ghosts included).
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy everything from `other` (dims must match).
    pub fn copy_from(&mut self, other: &Array3) {
        assert_eq!(
            (self.s1, self.s2, self.s3),
            (other.s1, other.s2, other.s3),
            "copy_from: dimension mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// `self += a * x` over the whole storage.
    pub fn axpy(&mut self, a: f64, x: &Array3) {
        assert_eq!(self.len(), x.len());
        for (s, &v) in self.data.iter_mut().zip(&x.data) {
            *s += a * v;
        }
    }

    /// `self = a*x + b*y` over the whole storage.
    pub fn lincomb(&mut self, a: f64, x: &Array3, b: f64, y: &Array3) {
        assert_eq!(self.len(), x.len());
        assert_eq!(self.len(), y.len());
        for ((s, &xv), &yv) in self.data.iter_mut().zip(&x.data).zip(&y.data) {
            *s = a * xv + b * yv;
        }
    }

    /// Scale the whole storage.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.data {
            *v *= a;
        }
    }

    /// The interior index space of this array (storage indices).
    pub fn interior(&self) -> IndexSpace3 {
        IndexSpace3 {
            i0: NGHOST,
            i1: NGHOST + self.n1,
            j0: NGHOST,
            j1: NGHOST + self.n2,
            k0: NGHOST,
            k1: NGHOST + self.n3,
        }
    }

    /// Maximum |value| over a block.
    pub fn max_abs(&self, b: &IndexSpace3) -> f64 {
        let mut m = 0.0_f64;
        b.for_each(|i, j, k| m = m.max(self.get(i, j, k).abs()));
        m
    }

    /// Sum over a block.
    pub fn sum(&self, b: &IndexSpace3) -> f64 {
        let mut s = 0.0;
        b.for_each(|i, j, k| s += self.get(i, j, k));
        s
    }

    /// Minimum over a block.
    pub fn min(&self, b: &IndexSpace3) -> f64 {
        let mut m = f64::INFINITY;
        b.for_each(|i, j, k| m = m.min(self.get(i, j, k)));
        m
    }

    /// True if any element of the block is NaN or infinite.
    pub fn has_non_finite(&self, b: &IndexSpace3) -> bool {
        let mut bad = false;
        b.for_each(|i, j, k| bad |= !self.get(i, j, k).is_finite());
        bad
    }

    /// Copy a k-plane (all `i`, `j` at fixed `k`) into `buf`;
    /// returns the number of values written. The plane is contiguous in
    /// storage, so this is a single memcpy — the cheap direction, which is
    /// why the MPI decomposition is over φ.
    pub fn pack_k(&self, k: usize, buf: &mut [f64]) -> usize {
        let n = self.s1 * self.s2;
        assert!(buf.len() >= n, "pack buffer too small");
        let start = self.idx(0, 0, k);
        buf[..n].copy_from_slice(&self.data[start..start + n]);
        n
    }

    /// Fill a k-plane from `buf`; returns values consumed.
    pub fn unpack_k(&mut self, k: usize, buf: &[f64]) -> usize {
        let n = self.s1 * self.s2;
        assert!(buf.len() >= n, "unpack buffer too small");
        let start = self.idx(0, 0, k);
        self.data[start..start + n].copy_from_slice(&buf[..n]);
        n
    }

    /// Size of one k-plane in values.
    pub fn k_plane_len(&self) -> usize {
        self.s1 * self.s2
    }

    /// Borrow the contiguous innermost-axis (i) window `i0..i1` of the
    /// row at `(j, k)` — the row-sliced read path for SIMD-friendly
    /// kernel bodies. Rows are contiguous in storage (i is the fastest
    /// axis), so the optimizer sees a plain `&[f64]` it can vectorize
    /// over; shifted windows (e.g. `row(i0+1, i1+1, j, k)`) express
    /// stencil neighbour reads without per-element index arithmetic.
    #[inline]
    pub fn row(&self, i0: usize, i1: usize, j: usize, k: usize) -> &[f64] {
        debug_assert!(i0 <= i1 && i1 <= self.s1 && j < self.s2 && k < self.s3);
        let start = i0 + self.s1 * (j + self.s2 * k);
        &self.data[start..start + (i1 - i0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_fortran_order() {
        let a = Array3::zeros(4, 3, 2);
        assert_eq!(a.idx(1, 0, 0) - a.idx(0, 0, 0), 1);
        assert_eq!(a.idx(0, 1, 0) - a.idx(0, 0, 0), a.s1);
        assert_eq!(a.idx(0, 0, 1) - a.idx(0, 0, 0), a.s1 * a.s2);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = Array3::zeros(3, 3, 3);
        a.set(2, 1, 3, 7.5);
        assert_eq!(a.get(2, 1, 3), 7.5);
        a.add(2, 1, 3, 0.5);
        assert_eq!(a.get(2, 1, 3), 8.0);
    }

    #[test]
    fn axpy_and_lincomb() {
        let x = Array3::constant(2, 2, 2, 3.0);
        let y = Array3::constant(2, 2, 2, 2.0);
        let mut z = Array3::zeros(2, 2, 2);
        z.lincomb(2.0, &x, -1.0, &y);
        assert_eq!(z.get(1, 1, 1), 4.0);
        z.axpy(0.5, &y);
        assert_eq!(z.get(1, 1, 1), 5.0);
    }

    #[test]
    fn block_reductions() {
        let mut a = Array3::zeros(2, 2, 2);
        let b = a.interior();
        a.set(1, 1, 1, -5.0);
        a.set(2, 2, 2, 3.0);
        assert_eq!(a.max_abs(&b), 5.0);
        assert_eq!(a.sum(&b), -2.0);
        assert_eq!(a.min(&b), -5.0);
    }

    #[test]
    fn pack_unpack_k_roundtrip() {
        let mut a = Array3::zeros(3, 4, 5);
        let n = a.k_plane_len();
        for j in 0..a.s2 {
            for i in 0..a.s1 {
                a.set(i, j, 2, (i * 10 + j) as f64);
            }
        }
        let mut buf = vec![0.0; n];
        assert_eq!(a.pack_k(2, &mut buf), n);
        let mut b = Array3::zeros(3, 4, 5);
        assert_eq!(b.unpack_k(6, &buf), n);
        for j in 0..a.s2 {
            for i in 0..a.s1 {
                assert_eq!(b.get(i, j, 6), (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Array3::zeros(2, 2, 2);
        assert!(!a.has_non_finite(&a.interior()));
        a.set(1, 1, 1, f64::NAN);
        assert!(a.has_non_finite(&a.interior()));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn copy_from_checks_dims() {
        let mut a = Array3::zeros(2, 2, 2);
        let b = Array3::zeros(3, 2, 2);
        a.copy_from(&b);
    }
}
