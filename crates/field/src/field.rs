//! Staggered fields: arrays bound to a grid location and a model buffer.

use crate::Array3;
use gpusim::BufferId;
use mas_grid::{IndexSpace3, SphericalGrid, Stagger};

/// A named physical field: an [`Array3`] plus its staggered location and
/// (after registration) the `gpusim` buffer id used for memory-model
/// accounting.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (kernel labels, dumps).
    pub name: &'static str,
    /// Staggered location on the mesh.
    pub stagger: Stagger,
    /// The data.
    pub data: Array3,
    /// Model buffer id (None until registered with a memory manager).
    pub buf: Option<BufferId>,
}

impl Field {
    /// Zero field with the staggering's dimensions on `grid`.
    pub fn zeros(name: &'static str, stagger: Stagger, grid: &SphericalGrid) -> Self {
        let (n1, n2, n3) = stagger.dims(grid.nr, grid.nt, grid.np);
        Self {
            name,
            stagger,
            data: Array3::zeros(n1, n2, n3),
            buf: None,
        }
    }

    /// Constant field.
    pub fn constant(
        name: &'static str,
        stagger: Stagger,
        grid: &SphericalGrid,
        v: f64,
    ) -> Self {
        let mut f = Self::zeros(name, stagger, grid);
        f.data.fill(v);
        f
    }

    /// Interior index space.
    pub fn interior(&self) -> IndexSpace3 {
        self.data.interior()
    }

    /// Model buffer id; panics if the field was never registered —
    /// launching a kernel on an unregistered field is a programming error
    /// in the solver setup.
    pub fn buf(&self) -> BufferId {
        self.buf
            .unwrap_or_else(|| panic!("field '{}' not registered with the device", self.name))
    }

    /// Initialize every storage point (ghosts included) from a function of
    /// the physical coordinates of this field's staggered location.
    pub fn init_with(&mut self, grid: &SphericalGrid, f: impl Fn(f64, f64, f64) -> f64) {
        let (s1, s2, s3) = (self.data.s1, self.data.s2, self.data.s3);
        for k in 0..s3 {
            let p = grid.coord(self.stagger, 2, k);
            for j in 0..s2 {
                let t = grid.coord(self.stagger, 1, j);
                for i in 0..s1 {
                    let r = grid.coord(self.stagger, 0, i);
                    self.data.set(i, j, k, f(r, t, p));
                }
            }
        }
    }
}

/// A staggered vector field: components on the faces normal to their
/// direction (the MAC/Yee arrangement used for both `v` and `B`).
#[derive(Clone, Debug)]
pub struct VecField {
    /// r-component on r-faces.
    pub r: Field,
    /// θ-component on θ-faces.
    pub t: Field,
    /// φ-component on φ-faces.
    pub p: Field,
}

impl VecField {
    /// Zero vector field on faces.
    pub fn zeros_faces(name: &'static str, grid: &SphericalGrid) -> Self {
        // Component names leak (once per field per run) so kernel labels
        // can be 'static; the count is tiny and fixed.
        let rn: &'static str = Box::leak(format!("{name}_r").into_boxed_str());
        let tn: &'static str = Box::leak(format!("{name}_t").into_boxed_str());
        let pn: &'static str = Box::leak(format!("{name}_p").into_boxed_str());
        Self {
            r: Field::zeros(rn, Stagger::FaceR, grid),
            t: Field::zeros(tn, Stagger::FaceT, grid),
            p: Field::zeros(pn, Stagger::FaceP, grid),
        }
    }

    /// Zero vector field on edges (E, J live here).
    pub fn zeros_edges(name: &'static str, grid: &SphericalGrid) -> Self {
        let rn: &'static str = Box::leak(format!("{name}_r").into_boxed_str());
        let tn: &'static str = Box::leak(format!("{name}_t").into_boxed_str());
        let pn: &'static str = Box::leak(format!("{name}_p").into_boxed_str());
        Self {
            r: Field::zeros(rn, Stagger::EdgeR, grid),
            t: Field::zeros(tn, Stagger::EdgeT, grid),
            p: Field::zeros(pn, Stagger::EdgeP, grid),
        }
    }

    /// Components as an array for iteration.
    pub fn comps(&self) -> [&Field; 3] {
        [&self.r, &self.t, &self.p]
    }

    /// Mutable components.
    pub fn comps_mut(&mut self) -> [&mut Field; 3] {
        [&mut self.r, &mut self.t, &mut self.p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SphericalGrid {
        SphericalGrid::coronal(8, 6, 4, 5.0)
    }

    #[test]
    fn field_dims_follow_stagger() {
        let g = grid();
        let f = Field::zeros("rho", Stagger::CellCenter, &g);
        assert_eq!((f.data.n1, f.data.n2, f.data.n3), (8, 6, 4));
        let f = Field::zeros("br", Stagger::FaceR, &g);
        assert_eq!((f.data.n1, f.data.n2, f.data.n3), (9, 6, 4));
    }

    #[test]
    fn init_with_uses_staggered_coords() {
        let g = grid();
        let mut f = Field::zeros("br", Stagger::FaceR, &g);
        f.init_with(&g, |r, _, _| r);
        // First interior r-face sits exactly at the surface r=1.
        assert!((f.data.get(mas_grid::NGHOST, 2, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vecfield_staggering() {
        let g = grid();
        let v = VecField::zeros_faces("v", &g);
        assert_eq!(v.r.stagger, Stagger::FaceR);
        assert_eq!(v.t.stagger, Stagger::FaceT);
        assert_eq!(v.p.stagger, Stagger::FaceP);
        let e = VecField::zeros_edges("e", &g);
        assert_eq!(e.r.stagger, Stagger::EdgeR);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_buffer_panics() {
        let g = grid();
        let f = Field::zeros("rho", Stagger::CellCenter, &g);
        let _ = f.buf();
    }
}
