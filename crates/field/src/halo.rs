//! φ-direction halo pack/unpack helpers.
//!
//! The MPI decomposition is a 1-D slab split over φ (the slowest storage
//! index), so each exchanged plane is one contiguous block per array.
//! A [`PhiHalo`] owns the staging buffers for a set of arrays so repeated
//! exchanges don't allocate.

use crate::Array3;
use mas_grid::NGHOST;
use std::sync::Arc;

/// Pack the first (`low = true`) or last interior φ-plane of `a` into `buf`.
/// Returns values written.
pub fn pack_phi_plane(a: &Array3, low: bool, buf: &mut [f64]) -> usize {
    let k = if low { NGHOST } else { NGHOST + a.n3 - 1 };
    a.pack_k(k, buf)
}

/// Unpack `buf` into the low (`low = true`) or high ghost φ-plane of `a`.
/// Returns values consumed.
pub fn unpack_phi_plane(a: &mut Array3, low: bool, buf: &[f64]) -> usize {
    let k = if low { NGHOST - 1 } else { NGHOST + a.n3 };
    a.unpack_k(k, buf)
}

/// Reusable staging buffers for the φ halo exchange of several arrays.
///
/// The send buffers are `Arc`-backed so an exchange can put them on the
/// wire without copying. A zero-copy send leaves the buffer shared until
/// the receiver drops its reference, so [`PhiHalo::pack`] rotates in a
/// spare buffer when the current one is still in flight — steady state
/// settles on at most one spare per in-flight payload and never
/// allocates again.
#[derive(Debug)]
pub struct PhiHalo {
    /// Send buffer toward the low-φ neighbour (shareable zero-copy).
    pub send_low: Arc<Vec<f64>>,
    /// Send buffer toward the high-φ neighbour (shareable zero-copy).
    pub send_high: Arc<Vec<f64>>,
    /// Receive buffer from the low-φ neighbour.
    pub recv_low: Vec<f64>,
    /// Receive buffer from the high-φ neighbour.
    pub recv_high: Vec<f64>,
    /// Per-array plane sizes (values), in pack order.
    plane_lens: Vec<usize>,
    /// Idle send buffers awaiting reuse (a direction's previous payload
    /// stays here until its receiver drops it).
    spares: Vec<Arc<Vec<f64>>>,
}

impl PhiHalo {
    /// Staging for the given arrays (by their plane sizes).
    pub fn for_arrays(arrays: &[&Array3]) -> Self {
        let plane_lens: Vec<usize> = arrays.iter().map(|a| a.k_plane_len()).collect();
        let total: usize = plane_lens.iter().sum();
        Self {
            send_low: Arc::new(vec![0.0; total]),
            send_high: Arc::new(vec![0.0; total]),
            recv_low: vec![0.0; total],
            recv_high: vec![0.0; total],
            plane_lens,
            spares: Vec::new(),
        }
    }

    /// Total staged values per direction.
    pub fn total_len(&self) -> usize {
        self.plane_lens.iter().sum()
    }

    /// Total staged bytes per direction.
    pub fn total_bytes(&self) -> usize {
        self.total_len() * std::mem::size_of::<f64>()
    }

    /// Idle spare send buffers currently pooled (diagnostic).
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// Swap `slot` for an unshared buffer if a receiver still holds the
    /// current one: reuse a free spare when available, allocate otherwise,
    /// and park the in-flight buffer in the spares pool until its receiver
    /// lets go.
    fn rotate_if_shared(slot: &mut Arc<Vec<f64>>, spares: &mut Vec<Arc<Vec<f64>>>, total: usize) {
        if Arc::get_mut(slot).is_some() {
            return;
        }
        let fresh = match spares.iter().position(|s| Arc::strong_count(s) == 1) {
            Some(pos) => spares.swap_remove(pos),
            None => Arc::new(vec![0.0; total]),
        };
        spares.push(std::mem::replace(slot, fresh));
    }

    /// Pack all arrays' boundary planes into the send buffers.
    /// `arrays` must match the constructor's order and sizes.
    pub fn pack(&mut self, arrays: &[&Array3]) {
        self.pack_planes(arrays.iter().map(|a| &**a), arrays.len());
    }

    /// [`PhiHalo::pack`] over the exchanger's mutable array set — avoids
    /// collecting a temporary `&Array3` slice per exchange.
    pub fn pack_mut(&mut self, arrays: &[&mut Array3]) {
        self.pack_planes(arrays.iter().map(|a| &**a), arrays.len());
    }

    fn pack_planes<'a>(&mut self, arrays: impl Iterator<Item = &'a Array3>, n: usize) {
        assert_eq!(n, self.plane_lens.len());
        let total: usize = self.plane_lens.iter().sum();
        Self::rotate_if_shared(&mut self.send_low, &mut self.spares, total);
        Self::rotate_if_shared(&mut self.send_high, &mut self.spares, total);
        let send_low = Arc::get_mut(&mut self.send_low).expect("unshared after rotation");
        let send_high = Arc::get_mut(&mut self.send_high).expect("unshared after rotation");
        let mut off = 0;
        for (a, &len) in arrays.zip(&self.plane_lens) {
            assert_eq!(a.k_plane_len(), len, "array shape changed since construction");
            pack_phi_plane(a, true, &mut send_low[off..off + len]);
            pack_phi_plane(a, false, &mut send_high[off..off + len]);
            off += len;
        }
    }

    /// Unpack the receive buffers into all arrays' ghost planes.
    pub fn unpack(&self, arrays: &mut [&mut Array3]) {
        assert_eq!(arrays.len(), self.plane_lens.len());
        let mut off = 0;
        for (a, &len) in arrays.iter_mut().zip(&self.plane_lens) {
            unpack_phi_plane(a, true, &self.recv_low[off..off + len]);
            unpack_phi_plane(a, false, &self.recv_high[off..off + len]);
            off += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_periodic_wrap_via_halo() {
        // With one rank, the low send buffer becomes the high recv buffer
        // and vice versa (periodic wrap). Verify the ghost planes end up
        // equal to the opposite interior planes.
        let mut a = Array3::zeros(3, 3, 4);
        for k in 0..a.s3 {
            for j in 0..a.s2 {
                for i in 0..a.s1 {
                    a.set(i, j, k, (100 * k + 10 * j + i) as f64);
                }
            }
        }
        let mut h = PhiHalo::for_arrays(&[&a]);
        h.pack(&[&a]);
        // self-exchange: low->high, high->low
        h.recv_low.copy_from_slice(&h.send_high);
        h.recv_high.copy_from_slice(&h.send_low);
        {
            let mut arrays = [&mut a];
            h.unpack(&mut arrays);
        }
        // Low ghost (k = 0) equals last interior (k = NGHOST + 3).
        for j in 0..a.s2 {
            for i in 0..a.s1 {
                assert_eq!(a.get(i, j, 0), a.get(i, j, NGHOST + 3));
                assert_eq!(a.get(i, j, NGHOST + 4), a.get(i, j, NGHOST));
            }
        }
    }

    #[test]
    fn multi_array_offsets() {
        let a = Array3::zeros(2, 2, 3);
        let b = Array3::zeros(4, 4, 3);
        let h = PhiHalo::for_arrays(&[&a, &b]);
        assert_eq!(h.total_len(), a.k_plane_len() + b.k_plane_len());
        assert_eq!(h.total_bytes(), h.total_len() * 8);
    }

    #[test]
    fn pack_rotates_in_flight_send_buffers_and_reuses_them() {
        let a = Array3::zeros(2, 2, 3);
        let mut h = PhiHalo::for_arrays(&[&a]);
        h.pack(&[&a]);
        // Simulate zero-copy sends still held by a receiver.
        let in_flight_low = Arc::clone(&h.send_low);
        let in_flight_high = Arc::clone(&h.send_high);
        h.pack(&[&a]);
        assert!(
            !Arc::ptr_eq(&in_flight_low, &h.send_low),
            "shared buffer must be rotated out, not mutated under the receiver"
        );
        assert_eq!(h.spare_count(), 2, "both in-flight buffers parked as spares");
        // Receiver lets go: the parked buffers become reusable, the pool
        // stops growing.
        drop(in_flight_low);
        drop(in_flight_high);
        let now_free_low = Arc::clone(&h.send_low);
        let now_free_high = Arc::clone(&h.send_high);
        drop(now_free_high);
        let _hold = now_free_low; // keep only the low buffer in flight
        h.pack(&[&a]);
        assert_eq!(h.spare_count(), 2, "steady state reuses spares, never grows");
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn pack_rejects_mismatched_arrays() {
        let a = Array3::zeros(2, 2, 3);
        let mut h = PhiHalo::for_arrays(&[&a]);
        let c = Array3::zeros(5, 5, 3);
        h.pack(&[&c]);
    }
}
