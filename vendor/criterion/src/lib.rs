//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API, vendored so `cargo bench` (and bench-target
//! compilation during `cargo test`) works without network access.
//!
//! Supported surface: `Criterion::default().sample_size(n)`,
//! `bench_function`, `benchmark_group` (with `sample_size`,
//! `bench_function`, `finish`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Measurement is deliberately simple: a short warm-up, then `sample_size`
//! timed samples of an adaptively-batched closure; the median per-iteration
//! time is printed. No plots, no statistics files.

use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Measure `body`, batching iterations adaptively.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up + batch sizing: aim for samples of >= ~200 µs.
        let t0 = Instant::now();
        black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_micros(200).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            samples.push(t.elapsed() / batch as u32);
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(d) => println!("bench: {name:<44} median {:>12.3} µs", d.as_secs_f64() * 1e6),
        None => println!("bench: {name:<44} (no iter() call)"),
    }
}

/// Group benchmark functions for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut n = 0u64;
        Criterion::default().sample_size(3).bench_function("t", |b| {
            b.iter(|| {
                n += 1;
                black_box(n)
            })
        });
        assert!(n > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut hit = false;
        g.bench_function("x", |b| {
            hit = true;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(hit);
    }
}
