//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! API, vendored so the workspace's tier-1 verify (`cargo build --release &&
//! cargo test -q`) succeeds without network access to crates.io.
//!
//! Supported surface (exactly what this workspace's property tests use):
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] #[test] fn .. }`
//! * parameter forms `name in strategy` and `name: Type` (via [`Arbitrary`])
//! * numeric `Range` strategies, tuple strategies (up to 8), `prop::collection::vec`,
//!   `.prop_map`, `prop_oneof!`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Differences from real proptest: generation is a fixed deterministic
//! stream per test name (reproducible across runs and platforms), and there
//! is **no shrinking** — a failing case panics with the ordinary assertion
//! message. This is a test-infrastructure shim, not a general library.

use std::ops::Range;

// ------------------------------------------------------------------ rng

/// Deterministic xorshift64* stream used to generate test cases.
pub struct TestRng(u64);

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Deterministic per-test seed derived from the test's name (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ------------------------------------------------------------- strategy

/// A generator of test values. Object-safe core; combinators require
/// `Self: Sized`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (type erasure for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// New choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.arms.len();
        self.arms[i].generate(rng)
    }
}

// ------------------------------------------------------------ arbitrary

/// Types generatable from the bare `name: Type` parameter form.
pub trait Arbitrary {
    /// Generate a value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — strategy form of [`Arbitrary`].
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ----------------------------------------------------------- collection

/// `prop::collection` — sized `Vec` strategies.
pub mod collection_impl {
    use super::{Strategy, TestRng};

    /// Length specification: fixed or a half-open range.
    pub struct SizeRange(pub usize, pub usize);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n, n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange(r.start, r.end)
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.1 - self.size.0;
            let len = self.size.0 + if span > 1 { (rng.next_u64() as usize) % span } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection_impl::{vec, SizeRange, VecStrategy};
    }
}

// --------------------------------------------------------------- config

/// Per-block test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// --------------------------------------------------------------- macros

/// Property-test block. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(100);
            while __ran < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                let mut __case = || -> bool {
                    $crate::proptest!(@bind __rng, $($params)*);
                    $body
                    true
                };
                if __case() {
                    __ran += 1;
                }
            }
            assert!(
                __ran > 0,
                "proptest {}: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $($rest:tt)*) => { $crate::proptest!(@bind $rng $($rest)*); };
    (@bind $rng:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $name:ident: $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    // No-config form.
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Reject the current case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return false;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(Box::new($arm) as $crate::BoxedStrategy<_>),+])
    };
}

/// Prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wiring itself: mixed param forms, assume, vec, oneof.
        #[test]
        fn macro_smoke(n in 1usize..10, flag: bool, xs in prop::collection::vec(0u8..5, 1..4)) {
            prop_assume!(n != 9);
            prop_assert!((1..10).contains(&n));
            prop_assert_ne!(n, 9);
            prop_assert_eq!(flag, flag);
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            let s = prop_oneof![(0u8..2).prop_map(|v| v + 10), (5u8..6).boxed()];
            let mut rng = crate::TestRng::new(7);
            for _ in 0..20 {
                let v = crate::Strategy::generate(&s, &mut rng);
                prop_assert!(v == 5u8 || v == 10u8 || v == 11u8);
            }
        }
    }
}
