/root/repo/target/debug/examples/port_audit-996777c07a71844f.d: examples/port_audit.rs

/root/repo/target/debug/examples/port_audit-996777c07a71844f: examples/port_audit.rs

examples/port_audit.rs:
