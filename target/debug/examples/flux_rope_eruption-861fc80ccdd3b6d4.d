/root/repo/target/debug/examples/flux_rope_eruption-861fc80ccdd3b6d4.d: examples/flux_rope_eruption.rs Cargo.toml

/root/repo/target/debug/examples/libflux_rope_eruption-861fc80ccdd3b6d4.rmeta: examples/flux_rope_eruption.rs Cargo.toml

examples/flux_rope_eruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
