/root/repo/target/debug/examples/profile_viz-969be23270c7869d.d: examples/profile_viz.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_viz-969be23270c7869d.rmeta: examples/profile_viz.rs Cargo.toml

examples/profile_viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
