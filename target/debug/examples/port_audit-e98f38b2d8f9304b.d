/root/repo/target/debug/examples/port_audit-e98f38b2d8f9304b.d: examples/port_audit.rs Cargo.toml

/root/repo/target/debug/examples/libport_audit-e98f38b2d8f9304b.rmeta: examples/port_audit.rs Cargo.toml

examples/port_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
