/root/repo/target/debug/examples/coronal_relaxation-3b3784862e10033d.d: examples/coronal_relaxation.rs Cargo.toml

/root/repo/target/debug/examples/libcoronal_relaxation-3b3784862e10033d.rmeta: examples/coronal_relaxation.rs Cargo.toml

examples/coronal_relaxation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
