/root/repo/target/debug/examples/coronal_relaxation-d516784baa2519e8.d: examples/coronal_relaxation.rs

/root/repo/target/debug/examples/coronal_relaxation-d516784baa2519e8: examples/coronal_relaxation.rs

examples/coronal_relaxation.rs:
