/root/repo/target/debug/examples/profile_viz-a8cdb6ecc4b01a6f.d: examples/profile_viz.rs

/root/repo/target/debug/examples/profile_viz-a8cdb6ecc4b01a6f: examples/profile_viz.rs

examples/profile_viz.rs:
