/root/repo/target/debug/examples/flux_rope_eruption-8450f70a98588200.d: examples/flux_rope_eruption.rs

/root/repo/target/debug/examples/flux_rope_eruption-8450f70a98588200: examples/flux_rope_eruption.rs

examples/flux_rope_eruption.rs:
