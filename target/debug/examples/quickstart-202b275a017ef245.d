/root/repo/target/debug/examples/quickstart-202b275a017ef245.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-202b275a017ef245: examples/quickstart.rs

examples/quickstart.rs:
