/root/repo/target/debug/deps/proptest_collectives-af18811a0053615a.d: crates/minimpi/tests/proptest_collectives.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_collectives-af18811a0053615a.rmeta: crates/minimpi/tests/proptest_collectives.rs Cargo.toml

crates/minimpi/tests/proptest_collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
