/root/repo/target/debug/deps/mas-224e5e4328b9714f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmas-224e5e4328b9714f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
