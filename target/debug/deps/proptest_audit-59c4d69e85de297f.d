/root/repo/target/debug/deps/proptest_audit-59c4d69e85de297f.d: crates/stdpar/tests/proptest_audit.rs

/root/repo/target/debug/deps/proptest_audit-59c4d69e85de297f: crates/stdpar/tests/proptest_audit.rs

crates/stdpar/tests/proptest_audit.rs:
