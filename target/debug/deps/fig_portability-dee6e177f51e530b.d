/root/repo/target/debug/deps/fig_portability-dee6e177f51e530b.d: crates/bench/src/bin/fig_portability.rs

/root/repo/target/debug/deps/fig_portability-dee6e177f51e530b: crates/bench/src/bin/fig_portability.rs

crates/bench/src/bin/fig_portability.rs:
