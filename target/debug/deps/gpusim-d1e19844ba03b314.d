/root/repo/target/debug/deps/gpusim-d1e19844ba03b314.d: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

/root/repo/target/debug/deps/libgpusim-d1e19844ba03b314.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

/root/repo/target/debug/deps/libgpusim-d1e19844ba03b314.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/clock.rs:
crates/gpusim/src/context.rs:
crates/gpusim/src/memory.rs:
crates/gpusim/src/profiler.rs:
crates/gpusim/src/spec.rs:
