/root/repo/target/debug/deps/table1_versions-4187d93f84600feb.d: crates/bench/src/bin/table1_versions.rs

/root/repo/target/debug/deps/table1_versions-4187d93f84600feb: crates/bench/src/bin/table1_versions.rs

crates/bench/src/bin/table1_versions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
