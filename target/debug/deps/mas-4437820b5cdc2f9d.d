/root/repo/target/debug/deps/mas-4437820b5cdc2f9d.d: src/bin/mas.rs

/root/repo/target/debug/deps/mas-4437820b5cdc2f9d: src/bin/mas.rs

src/bin/mas.rs:
