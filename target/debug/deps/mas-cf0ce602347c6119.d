/root/repo/target/debug/deps/mas-cf0ce602347c6119.d: src/lib.rs

/root/repo/target/debug/deps/libmas-cf0ce602347c6119.rlib: src/lib.rs

/root/repo/target/debug/deps/libmas-cf0ce602347c6119.rmeta: src/lib.rs

src/lib.rs:
