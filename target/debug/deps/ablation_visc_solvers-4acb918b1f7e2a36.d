/root/repo/target/debug/deps/ablation_visc_solvers-4acb918b1f7e2a36.d: crates/bench/src/bin/ablation_visc_solvers.rs

/root/repo/target/debug/deps/ablation_visc_solvers-4acb918b1f7e2a36: crates/bench/src/bin/ablation_visc_solvers.rs

crates/bench/src/bin/ablation_visc_solvers.rs:
