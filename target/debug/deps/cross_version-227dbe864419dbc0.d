/root/repo/target/debug/deps/cross_version-227dbe864419dbc0.d: tests/cross_version.rs

/root/repo/target/debug/deps/cross_version-227dbe864419dbc0: tests/cross_version.rs

tests/cross_version.rs:
