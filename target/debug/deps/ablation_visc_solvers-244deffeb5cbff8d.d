/root/repo/target/debug/deps/ablation_visc_solvers-244deffeb5cbff8d.d: crates/bench/src/bin/ablation_visc_solvers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_visc_solvers-244deffeb5cbff8d.rmeta: crates/bench/src/bin/ablation_visc_solvers.rs Cargo.toml

crates/bench/src/bin/ablation_visc_solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
