/root/repo/target/debug/deps/minimpi-8b38439200253889.d: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

/root/repo/target/debug/deps/libminimpi-8b38439200253889.rlib: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

/root/repo/target/debug/deps/libminimpi-8b38439200253889.rmeta: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

crates/minimpi/src/lib.rs:
crates/minimpi/src/chan.rs:
crates/minimpi/src/comm.rs:
crates/minimpi/src/world.rs:
