/root/repo/target/debug/deps/stdpar-3ecdf07eab491dba.d: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

/root/repo/target/debug/deps/libstdpar-3ecdf07eab491dba.rlib: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

/root/repo/target/debug/deps/libstdpar-3ecdf07eab491dba.rmeta: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

crates/stdpar/src/lib.rs:
crates/stdpar/src/audit.rs:
crates/stdpar/src/engine.rs:
crates/stdpar/src/exec.rs:
crates/stdpar/src/site.rs:
crates/stdpar/src/version.rs:
