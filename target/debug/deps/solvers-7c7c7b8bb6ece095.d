/root/repo/target/debug/deps/solvers-7c7c7b8bb6ece095.d: crates/bench/benches/solvers.rs

/root/repo/target/debug/deps/solvers-7c7c7b8bb6ece095: crates/bench/benches/solvers.rs

crates/bench/benches/solvers.rs:
