/root/repo/target/debug/deps/edge_cases-58d9e0d931d7945e.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-58d9e0d931d7945e: tests/edge_cases.rs

tests/edge_cases.rs:
