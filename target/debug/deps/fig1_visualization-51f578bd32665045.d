/root/repo/target/debug/deps/fig1_visualization-51f578bd32665045.d: crates/bench/src/bin/fig1_visualization.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_visualization-51f578bd32665045.rmeta: crates/bench/src/bin/fig1_visualization.rs Cargo.toml

crates/bench/src/bin/fig1_visualization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
