/root/repo/target/debug/deps/fig3_mpi_breakdown-5fdee5c6dc078c4e.d: crates/bench/src/bin/fig3_mpi_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_mpi_breakdown-5fdee5c6dc078c4e.rmeta: crates/bench/src/bin/fig3_mpi_breakdown.rs Cargo.toml

crates/bench/src/bin/fig3_mpi_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
