/root/repo/target/debug/deps/ablation_visc_solvers-a2e73b7f521bc4b8.d: crates/bench/src/bin/ablation_visc_solvers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_visc_solvers-a2e73b7f521bc4b8.rmeta: crates/bench/src/bin/ablation_visc_solvers.rs Cargo.toml

crates/bench/src/bin/ablation_visc_solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
