/root/repo/target/debug/deps/ablation_visc_solvers-9072bf8dfef14200.d: crates/bench/src/bin/ablation_visc_solvers.rs

/root/repo/target/debug/deps/ablation_visc_solvers-9072bf8dfef14200: crates/bench/src/bin/ablation_visc_solvers.rs

crates/bench/src/bin/ablation_visc_solvers.rs:
