/root/repo/target/debug/deps/mas-29d3fc15c10c51de.d: src/lib.rs

/root/repo/target/debug/deps/mas-29d3fc15c10c51de: src/lib.rs

src/lib.rs:
