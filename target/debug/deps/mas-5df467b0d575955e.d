/root/repo/target/debug/deps/mas-5df467b0d575955e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmas-5df467b0d575955e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
