/root/repo/target/debug/deps/calibrate-8b75ce57f2f10729.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-8b75ce57f2f10729: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
