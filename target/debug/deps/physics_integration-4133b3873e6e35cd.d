/root/repo/target/debug/deps/physics_integration-4133b3873e6e35cd.d: tests/physics_integration.rs

/root/repo/target/debug/deps/physics_integration-4133b3873e6e35cd: tests/physics_integration.rs

tests/physics_integration.rs:
