/root/repo/target/debug/deps/fig1_visualization-d4b7fdd530c97380.d: crates/bench/src/bin/fig1_visualization.rs

/root/repo/target/debug/deps/fig1_visualization-d4b7fdd530c97380: crates/bench/src/bin/fig1_visualization.rs

crates/bench/src/bin/fig1_visualization.rs:
