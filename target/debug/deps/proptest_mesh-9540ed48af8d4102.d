/root/repo/target/debug/deps/proptest_mesh-9540ed48af8d4102.d: crates/grid/tests/proptest_mesh.rs

/root/repo/target/debug/deps/proptest_mesh-9540ed48af8d4102: crates/grid/tests/proptest_mesh.rs

crates/grid/tests/proptest_mesh.rs:
