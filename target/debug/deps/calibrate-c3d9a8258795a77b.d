/root/repo/target/debug/deps/calibrate-c3d9a8258795a77b.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-c3d9a8258795a77b.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
