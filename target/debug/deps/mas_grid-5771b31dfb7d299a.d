/root/repo/target/debug/deps/mas_grid-5771b31dfb7d299a.d: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs Cargo.toml

/root/repo/target/debug/deps/libmas_grid-5771b31dfb7d299a.rmeta: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs Cargo.toml

crates/grid/src/lib.rs:
crates/grid/src/index.rs:
crates/grid/src/mesh1d.rs:
crates/grid/src/spherical.rs:
crates/grid/src/stagger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
