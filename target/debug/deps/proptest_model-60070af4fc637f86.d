/root/repo/target/debug/deps/proptest_model-60070af4fc637f86.d: crates/gpusim/tests/proptest_model.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_model-60070af4fc637f86.rmeta: crates/gpusim/tests/proptest_model.rs Cargo.toml

crates/gpusim/tests/proptest_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
