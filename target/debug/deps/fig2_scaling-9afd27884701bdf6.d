/root/repo/target/debug/deps/fig2_scaling-9afd27884701bdf6.d: crates/bench/src/bin/fig2_scaling.rs

/root/repo/target/debug/deps/fig2_scaling-9afd27884701bdf6: crates/bench/src/bin/fig2_scaling.rs

crates/bench/src/bin/fig2_scaling.rs:
