/root/repo/target/debug/deps/gpusim-9d1a09d6b6e7063c.d: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libgpusim-9d1a09d6b6e7063c.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/clock.rs:
crates/gpusim/src/context.rs:
crates/gpusim/src/memory.rs:
crates/gpusim/src/profiler.rs:
crates/gpusim/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
