/root/repo/target/debug/deps/gpusim-7767610bdaca5be4.d: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libgpusim-7767610bdaca5be4.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/clock.rs:
crates/gpusim/src/context.rs:
crates/gpusim/src/memory.rs:
crates/gpusim/src/profiler.rs:
crates/gpusim/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
