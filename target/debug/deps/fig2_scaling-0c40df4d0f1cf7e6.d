/root/repo/target/debug/deps/fig2_scaling-0c40df4d0f1cf7e6.d: crates/bench/src/bin/fig2_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_scaling-0c40df4d0f1cf7e6.rmeta: crates/bench/src/bin/fig2_scaling.rs Cargo.toml

crates/bench/src/bin/fig2_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
