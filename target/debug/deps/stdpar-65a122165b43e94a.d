/root/repo/target/debug/deps/stdpar-65a122165b43e94a.d: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs Cargo.toml

/root/repo/target/debug/deps/libstdpar-65a122165b43e94a.rmeta: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs Cargo.toml

crates/stdpar/src/lib.rs:
crates/stdpar/src/audit.rs:
crates/stdpar/src/engine.rs:
crates/stdpar/src/exec.rs:
crates/stdpar/src/site.rs:
crates/stdpar/src/version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
