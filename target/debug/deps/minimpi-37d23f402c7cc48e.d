/root/repo/target/debug/deps/minimpi-37d23f402c7cc48e.d: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

/root/repo/target/debug/deps/minimpi-37d23f402c7cc48e: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

crates/minimpi/src/lib.rs:
crates/minimpi/src/chan.rs:
crates/minimpi/src/comm.rs:
crates/minimpi/src/world.rs:
