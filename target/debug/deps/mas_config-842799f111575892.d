/root/repo/target/debug/deps/mas_config-842799f111575892.d: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

/root/repo/target/debug/deps/mas_config-842799f111575892: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

crates/config/src/lib.rs:
crates/config/src/deck.rs:
crates/config/src/parse.rs:
