/root/repo/target/debug/deps/solvers-0cf86e5d37e11639.d: crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-0cf86e5d37e11639.rmeta: crates/bench/benches/solvers.rs Cargo.toml

crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
