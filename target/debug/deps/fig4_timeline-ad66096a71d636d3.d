/root/repo/target/debug/deps/fig4_timeline-ad66096a71d636d3.d: crates/bench/src/bin/fig4_timeline.rs

/root/repo/target/debug/deps/fig4_timeline-ad66096a71d636d3: crates/bench/src/bin/fig4_timeline.rs

crates/bench/src/bin/fig4_timeline.rs:
