/root/repo/target/debug/deps/mas_field-3377c19d4b7c0824.d: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

/root/repo/target/debug/deps/libmas_field-3377c19d4b7c0824.rlib: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

/root/repo/target/debug/deps/libmas_field-3377c19d4b7c0824.rmeta: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

crates/field/src/lib.rs:
crates/field/src/array3.rs:
crates/field/src/field.rs:
crates/field/src/halo.rs:
crates/field/src/norms.rs:
crates/field/src/parview.rs:
