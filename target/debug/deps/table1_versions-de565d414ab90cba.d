/root/repo/target/debug/deps/table1_versions-de565d414ab90cba.d: crates/bench/src/bin/table1_versions.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_versions-de565d414ab90cba.rmeta: crates/bench/src/bin/table1_versions.rs Cargo.toml

crates/bench/src/bin/table1_versions.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
