/root/repo/target/debug/deps/table2_directives-111af605d3a904c0.d: crates/bench/src/bin/table2_directives.rs

/root/repo/target/debug/deps/table2_directives-111af605d3a904c0: crates/bench/src/bin/table2_directives.rs

crates/bench/src/bin/table2_directives.rs:
