/root/repo/target/debug/deps/fig_portability-4ca07acf9498ed71.d: crates/bench/src/bin/fig_portability.rs

/root/repo/target/debug/deps/fig_portability-4ca07acf9498ed71: crates/bench/src/bin/fig_portability.rs

crates/bench/src/bin/fig_portability.rs:
