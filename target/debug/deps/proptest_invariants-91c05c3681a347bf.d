/root/repo/target/debug/deps/proptest_invariants-91c05c3681a347bf.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-91c05c3681a347bf: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
