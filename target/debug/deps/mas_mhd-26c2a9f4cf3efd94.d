/root/repo/target/debug/deps/mas_mhd-26c2a9f4cf3efd94.d: crates/mhd/src/lib.rs crates/mhd/src/bc.rs crates/mhd/src/checkpoint.rs crates/mhd/src/diag.rs crates/mhd/src/halo.rs crates/mhd/src/ops/mod.rs crates/mhd/src/ops/deriv.rs crates/mhd/src/ops/interp.rs crates/mhd/src/physics/mod.rs crates/mhd/src/physics/advect.rs crates/mhd/src/physics/conduct.rs crates/mhd/src/physics/induction.rs crates/mhd/src/physics/momentum.rs crates/mhd/src/run.rs crates/mhd/src/sim.rs crates/mhd/src/sites.rs crates/mhd/src/solvers/mod.rs crates/mhd/src/solvers/pcg.rs crates/mhd/src/solvers/sts.rs crates/mhd/src/state.rs crates/mhd/src/step.rs Cargo.toml

/root/repo/target/debug/deps/libmas_mhd-26c2a9f4cf3efd94.rmeta: crates/mhd/src/lib.rs crates/mhd/src/bc.rs crates/mhd/src/checkpoint.rs crates/mhd/src/diag.rs crates/mhd/src/halo.rs crates/mhd/src/ops/mod.rs crates/mhd/src/ops/deriv.rs crates/mhd/src/ops/interp.rs crates/mhd/src/physics/mod.rs crates/mhd/src/physics/advect.rs crates/mhd/src/physics/conduct.rs crates/mhd/src/physics/induction.rs crates/mhd/src/physics/momentum.rs crates/mhd/src/run.rs crates/mhd/src/sim.rs crates/mhd/src/sites.rs crates/mhd/src/solvers/mod.rs crates/mhd/src/solvers/pcg.rs crates/mhd/src/solvers/sts.rs crates/mhd/src/state.rs crates/mhd/src/step.rs Cargo.toml

crates/mhd/src/lib.rs:
crates/mhd/src/bc.rs:
crates/mhd/src/checkpoint.rs:
crates/mhd/src/diag.rs:
crates/mhd/src/halo.rs:
crates/mhd/src/ops/mod.rs:
crates/mhd/src/ops/deriv.rs:
crates/mhd/src/ops/interp.rs:
crates/mhd/src/physics/mod.rs:
crates/mhd/src/physics/advect.rs:
crates/mhd/src/physics/conduct.rs:
crates/mhd/src/physics/induction.rs:
crates/mhd/src/physics/momentum.rs:
crates/mhd/src/run.rs:
crates/mhd/src/sim.rs:
crates/mhd/src/sites.rs:
crates/mhd/src/solvers/mod.rs:
crates/mhd/src/solvers/pcg.rs:
crates/mhd/src/solvers/sts.rs:
crates/mhd/src/state.rs:
crates/mhd/src/step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
