/root/repo/target/debug/deps/mas_io-0518fd82ba38ab2a.d: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libmas_io-0518fd82ba38ab2a.rmeta: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs Cargo.toml

crates/io/src/lib.rs:
crates/io/src/csv.rs:
crates/io/src/dump.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
