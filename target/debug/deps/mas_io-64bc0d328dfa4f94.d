/root/repo/target/debug/deps/mas_io-64bc0d328dfa4f94.d: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

/root/repo/target/debug/deps/libmas_io-64bc0d328dfa4f94.rlib: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

/root/repo/target/debug/deps/libmas_io-64bc0d328dfa4f94.rmeta: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

crates/io/src/lib.rs:
crates/io/src/csv.rs:
crates/io/src/dump.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/timeline.rs:
