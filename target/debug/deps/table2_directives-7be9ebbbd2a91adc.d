/root/repo/target/debug/deps/table2_directives-7be9ebbbd2a91adc.d: crates/bench/src/bin/table2_directives.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_directives-7be9ebbbd2a91adc.rmeta: crates/bench/src/bin/table2_directives.rs Cargo.toml

crates/bench/src/bin/table2_directives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
