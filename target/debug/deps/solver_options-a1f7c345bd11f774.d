/root/repo/target/debug/deps/solver_options-a1f7c345bd11f774.d: tests/solver_options.rs

/root/repo/target/debug/deps/solver_options-a1f7c345bd11f774: tests/solver_options.rs

tests/solver_options.rs:
