/root/repo/target/debug/deps/minimpi-702664f75bf4a949.d: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libminimpi-702664f75bf4a949.rmeta: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs Cargo.toml

crates/minimpi/src/lib.rs:
crates/minimpi/src/chan.rs:
crates/minimpi/src/comm.rs:
crates/minimpi/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
