/root/repo/target/debug/deps/fig1_visualization-8be8993f8371f9bd.d: crates/bench/src/bin/fig1_visualization.rs

/root/repo/target/debug/deps/fig1_visualization-8be8993f8371f9bd: crates/bench/src/bin/fig1_visualization.rs

crates/bench/src/bin/fig1_visualization.rs:
