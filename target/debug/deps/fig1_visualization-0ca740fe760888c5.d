/root/repo/target/debug/deps/fig1_visualization-0ca740fe760888c5.d: crates/bench/src/bin/fig1_visualization.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_visualization-0ca740fe760888c5.rmeta: crates/bench/src/bin/fig1_visualization.rs Cargo.toml

crates/bench/src/bin/fig1_visualization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
