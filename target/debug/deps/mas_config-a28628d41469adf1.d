/root/repo/target/debug/deps/mas_config-a28628d41469adf1.d: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libmas_config-a28628d41469adf1.rmeta: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs Cargo.toml

crates/config/src/lib.rs:
crates/config/src/deck.rs:
crates/config/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
