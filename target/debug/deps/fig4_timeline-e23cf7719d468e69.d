/root/repo/target/debug/deps/fig4_timeline-e23cf7719d468e69.d: crates/bench/src/bin/fig4_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_timeline-e23cf7719d468e69.rmeta: crates/bench/src/bin/fig4_timeline.rs Cargo.toml

crates/bench/src/bin/fig4_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
