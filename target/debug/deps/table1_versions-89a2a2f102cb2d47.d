/root/repo/target/debug/deps/table1_versions-89a2a2f102cb2d47.d: crates/bench/src/bin/table1_versions.rs

/root/repo/target/debug/deps/table1_versions-89a2a2f102cb2d47: crates/bench/src/bin/table1_versions.rs

crates/bench/src/bin/table1_versions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
