/root/repo/target/debug/deps/fig_portability-ae9e9a26920124e6.d: crates/bench/src/bin/fig_portability.rs Cargo.toml

/root/repo/target/debug/deps/libfig_portability-ae9e9a26920124e6.rmeta: crates/bench/src/bin/fig_portability.rs Cargo.toml

crates/bench/src/bin/fig_portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
