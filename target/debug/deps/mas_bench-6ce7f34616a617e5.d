/root/repo/target/debug/deps/mas_bench-6ce7f34616a617e5.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/mas_bench-6ce7f34616a617e5: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
