/root/repo/target/debug/deps/scaling-01b7a4639ba5046f.d: tests/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-01b7a4639ba5046f.rmeta: tests/scaling.rs Cargo.toml

tests/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
