/root/repo/target/debug/deps/fig4_timeline-4ecc6794af6bde50.d: crates/bench/src/bin/fig4_timeline.rs

/root/repo/target/debug/deps/fig4_timeline-4ecc6794af6bde50: crates/bench/src/bin/fig4_timeline.rs

crates/bench/src/bin/fig4_timeline.rs:
