/root/repo/target/debug/deps/fig3_mpi_breakdown-5d780663a89f587d.d: crates/bench/src/bin/fig3_mpi_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_mpi_breakdown-5d780663a89f587d.rmeta: crates/bench/src/bin/fig3_mpi_breakdown.rs Cargo.toml

crates/bench/src/bin/fig3_mpi_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
