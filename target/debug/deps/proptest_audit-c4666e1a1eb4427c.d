/root/repo/target/debug/deps/proptest_audit-c4666e1a1eb4427c.d: crates/stdpar/tests/proptest_audit.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_audit-c4666e1a1eb4427c.rmeta: crates/stdpar/tests/proptest_audit.rs Cargo.toml

crates/stdpar/tests/proptest_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
