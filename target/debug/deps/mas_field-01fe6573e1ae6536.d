/root/repo/target/debug/deps/mas_field-01fe6573e1ae6536.d: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs Cargo.toml

/root/repo/target/debug/deps/libmas_field-01fe6573e1ae6536.rmeta: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/array3.rs:
crates/field/src/field.rs:
crates/field/src/halo.rs:
crates/field/src/norms.rs:
crates/field/src/parview.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
