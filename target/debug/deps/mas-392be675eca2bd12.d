/root/repo/target/debug/deps/mas-392be675eca2bd12.d: src/bin/mas.rs Cargo.toml

/root/repo/target/debug/deps/libmas-392be675eca2bd12.rmeta: src/bin/mas.rs Cargo.toml

src/bin/mas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
