/root/repo/target/debug/deps/scaling-e5599f00ae243fe0.d: tests/scaling.rs

/root/repo/target/debug/deps/scaling-e5599f00ae243fe0: tests/scaling.rs

tests/scaling.rs:
