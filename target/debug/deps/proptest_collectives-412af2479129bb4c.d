/root/repo/target/debug/deps/proptest_collectives-412af2479129bb4c.d: crates/minimpi/tests/proptest_collectives.rs

/root/repo/target/debug/deps/proptest_collectives-412af2479129bb4c: crates/minimpi/tests/proptest_collectives.rs

crates/minimpi/tests/proptest_collectives.rs:
