/root/repo/target/debug/deps/kernels-b84d78940e2d2dae.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-b84d78940e2d2dae.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
