/root/repo/target/debug/deps/proptest_mesh-f6b07bc75a68ae00.d: crates/grid/tests/proptest_mesh.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_mesh-f6b07bc75a68ae00.rmeta: crates/grid/tests/proptest_mesh.rs Cargo.toml

crates/grid/tests/proptest_mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
