/root/repo/target/debug/deps/table2_directives-99530a915b6a5590.d: crates/bench/src/bin/table2_directives.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_directives-99530a915b6a5590.rmeta: crates/bench/src/bin/table2_directives.rs Cargo.toml

crates/bench/src/bin/table2_directives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
