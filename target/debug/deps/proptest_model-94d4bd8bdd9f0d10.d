/root/repo/target/debug/deps/proptest_model-94d4bd8bdd9f0d10.d: crates/gpusim/tests/proptest_model.rs

/root/repo/target/debug/deps/proptest_model-94d4bd8bdd9f0d10: crates/gpusim/tests/proptest_model.rs

crates/gpusim/tests/proptest_model.rs:
