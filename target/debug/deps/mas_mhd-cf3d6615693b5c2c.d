/root/repo/target/debug/deps/mas_mhd-cf3d6615693b5c2c.d: crates/mhd/src/lib.rs crates/mhd/src/bc.rs crates/mhd/src/checkpoint.rs crates/mhd/src/diag.rs crates/mhd/src/halo.rs crates/mhd/src/ops/mod.rs crates/mhd/src/ops/deriv.rs crates/mhd/src/ops/interp.rs crates/mhd/src/physics/mod.rs crates/mhd/src/physics/advect.rs crates/mhd/src/physics/conduct.rs crates/mhd/src/physics/induction.rs crates/mhd/src/physics/momentum.rs crates/mhd/src/run.rs crates/mhd/src/sim.rs crates/mhd/src/sites.rs crates/mhd/src/solvers/mod.rs crates/mhd/src/solvers/pcg.rs crates/mhd/src/solvers/sts.rs crates/mhd/src/state.rs crates/mhd/src/step.rs

/root/repo/target/debug/deps/mas_mhd-cf3d6615693b5c2c: crates/mhd/src/lib.rs crates/mhd/src/bc.rs crates/mhd/src/checkpoint.rs crates/mhd/src/diag.rs crates/mhd/src/halo.rs crates/mhd/src/ops/mod.rs crates/mhd/src/ops/deriv.rs crates/mhd/src/ops/interp.rs crates/mhd/src/physics/mod.rs crates/mhd/src/physics/advect.rs crates/mhd/src/physics/conduct.rs crates/mhd/src/physics/induction.rs crates/mhd/src/physics/momentum.rs crates/mhd/src/run.rs crates/mhd/src/sim.rs crates/mhd/src/sites.rs crates/mhd/src/solvers/mod.rs crates/mhd/src/solvers/pcg.rs crates/mhd/src/solvers/sts.rs crates/mhd/src/state.rs crates/mhd/src/step.rs

crates/mhd/src/lib.rs:
crates/mhd/src/bc.rs:
crates/mhd/src/checkpoint.rs:
crates/mhd/src/diag.rs:
crates/mhd/src/halo.rs:
crates/mhd/src/ops/mod.rs:
crates/mhd/src/ops/deriv.rs:
crates/mhd/src/ops/interp.rs:
crates/mhd/src/physics/mod.rs:
crates/mhd/src/physics/advect.rs:
crates/mhd/src/physics/conduct.rs:
crates/mhd/src/physics/induction.rs:
crates/mhd/src/physics/momentum.rs:
crates/mhd/src/run.rs:
crates/mhd/src/sim.rs:
crates/mhd/src/sites.rs:
crates/mhd/src/solvers/mod.rs:
crates/mhd/src/solvers/pcg.rs:
crates/mhd/src/solvers/sts.rs:
crates/mhd/src/state.rs:
crates/mhd/src/step.rs:
