/root/repo/target/debug/deps/gpusim-5ba962035ee64fd7.d: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

/root/repo/target/debug/deps/gpusim-5ba962035ee64fd7: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/clock.rs:
crates/gpusim/src/context.rs:
crates/gpusim/src/memory.rs:
crates/gpusim/src/profiler.rs:
crates/gpusim/src/spec.rs:
