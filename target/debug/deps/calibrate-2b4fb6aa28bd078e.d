/root/repo/target/debug/deps/calibrate-2b4fb6aa28bd078e.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-2b4fb6aa28bd078e.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
