/root/repo/target/debug/deps/fig3_mpi_breakdown-41e567211372cab3.d: crates/bench/src/bin/fig3_mpi_breakdown.rs

/root/repo/target/debug/deps/fig3_mpi_breakdown-41e567211372cab3: crates/bench/src/bin/fig3_mpi_breakdown.rs

crates/bench/src/bin/fig3_mpi_breakdown.rs:
