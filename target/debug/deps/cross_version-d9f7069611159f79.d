/root/repo/target/debug/deps/cross_version-d9f7069611159f79.d: tests/cross_version.rs Cargo.toml

/root/repo/target/debug/deps/libcross_version-d9f7069611159f79.rmeta: tests/cross_version.rs Cargo.toml

tests/cross_version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
