/root/repo/target/debug/deps/mas_grid-a166c6be0be9d299.d: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

/root/repo/target/debug/deps/libmas_grid-a166c6be0be9d299.rlib: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

/root/repo/target/debug/deps/libmas_grid-a166c6be0be9d299.rmeta: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

crates/grid/src/lib.rs:
crates/grid/src/index.rs:
crates/grid/src/mesh1d.rs:
crates/grid/src/spherical.rs:
crates/grid/src/stagger.rs:
