/root/repo/target/debug/deps/mas_bench-3a4df275bc20726d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/debug/deps/libmas_bench-3a4df275bc20726d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
