/root/repo/target/debug/deps/table3_cpu-c0f203c4f7e3931a.d: crates/bench/src/bin/table3_cpu.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_cpu-c0f203c4f7e3931a.rmeta: crates/bench/src/bin/table3_cpu.rs Cargo.toml

crates/bench/src/bin/table3_cpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
