/root/repo/target/debug/deps/stdpar-29b70b3afc1975bc.d: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

/root/repo/target/debug/deps/stdpar-29b70b3afc1975bc: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

crates/stdpar/src/lib.rs:
crates/stdpar/src/audit.rs:
crates/stdpar/src/engine.rs:
crates/stdpar/src/exec.rs:
crates/stdpar/src/site.rs:
crates/stdpar/src/version.rs:
