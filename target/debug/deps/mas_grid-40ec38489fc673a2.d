/root/repo/target/debug/deps/mas_grid-40ec38489fc673a2.d: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

/root/repo/target/debug/deps/mas_grid-40ec38489fc673a2: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

crates/grid/src/lib.rs:
crates/grid/src/index.rs:
crates/grid/src/mesh1d.rs:
crates/grid/src/spherical.rs:
crates/grid/src/stagger.rs:
