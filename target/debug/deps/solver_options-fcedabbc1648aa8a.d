/root/repo/target/debug/deps/solver_options-fcedabbc1648aa8a.d: tests/solver_options.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_options-fcedabbc1648aa8a.rmeta: tests/solver_options.rs Cargo.toml

tests/solver_options.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
