/root/repo/target/debug/deps/mas_bench-d69e60eb91c2d2e7.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/debug/deps/libmas_bench-d69e60eb91c2d2e7.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
