/root/repo/target/debug/deps/mas_io-056b85a7dd920e05.d: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

/root/repo/target/debug/deps/mas_io-056b85a7dd920e05: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

crates/io/src/lib.rs:
crates/io/src/csv.rs:
crates/io/src/dump.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/timeline.rs:
