/root/repo/target/debug/deps/fig2_scaling-3475cac531b2d930.d: crates/bench/src/bin/fig2_scaling.rs

/root/repo/target/debug/deps/fig2_scaling-3475cac531b2d930: crates/bench/src/bin/fig2_scaling.rs

crates/bench/src/bin/fig2_scaling.rs:
