/root/repo/target/debug/deps/mas_config-aa6c82fbca1255f2.d: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

/root/repo/target/debug/deps/libmas_config-aa6c82fbca1255f2.rlib: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

/root/repo/target/debug/deps/libmas_config-aa6c82fbca1255f2.rmeta: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

crates/config/src/lib.rs:
crates/config/src/deck.rs:
crates/config/src/parse.rs:
