/root/repo/target/debug/deps/table3_cpu-a6d6ccaae25a0860.d: crates/bench/src/bin/table3_cpu.rs

/root/repo/target/debug/deps/table3_cpu-a6d6ccaae25a0860: crates/bench/src/bin/table3_cpu.rs

crates/bench/src/bin/table3_cpu.rs:
