/root/repo/target/debug/deps/fig2_scaling-b1e39f7b6691e93b.d: crates/bench/src/bin/fig2_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_scaling-b1e39f7b6691e93b.rmeta: crates/bench/src/bin/fig2_scaling.rs Cargo.toml

crates/bench/src/bin/fig2_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
