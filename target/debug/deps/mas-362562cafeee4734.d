/root/repo/target/debug/deps/mas-362562cafeee4734.d: src/bin/mas.rs Cargo.toml

/root/repo/target/debug/deps/libmas-362562cafeee4734.rmeta: src/bin/mas.rs Cargo.toml

src/bin/mas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
