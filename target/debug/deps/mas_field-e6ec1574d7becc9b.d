/root/repo/target/debug/deps/mas_field-e6ec1574d7becc9b.d: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

/root/repo/target/debug/deps/mas_field-e6ec1574d7becc9b: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

crates/field/src/lib.rs:
crates/field/src/array3.rs:
crates/field/src/field.rs:
crates/field/src/halo.rs:
crates/field/src/norms.rs:
crates/field/src/parview.rs:
