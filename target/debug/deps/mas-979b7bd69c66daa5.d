/root/repo/target/debug/deps/mas-979b7bd69c66daa5.d: src/bin/mas.rs

/root/repo/target/debug/deps/mas-979b7bd69c66daa5: src/bin/mas.rs

src/bin/mas.rs:
