/root/repo/target/debug/deps/mas_bench-4382683db7e82b4b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libmas_bench-4382683db7e82b4b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libmas_bench-4382683db7e82b4b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
