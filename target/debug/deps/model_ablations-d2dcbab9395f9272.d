/root/repo/target/debug/deps/model_ablations-d2dcbab9395f9272.d: crates/bench/benches/model_ablations.rs

/root/repo/target/debug/deps/model_ablations-d2dcbab9395f9272: crates/bench/benches/model_ablations.rs

crates/bench/benches/model_ablations.rs:
