/root/repo/target/debug/deps/model_ablations-92551a2b5a4bb30f.d: crates/bench/benches/model_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_ablations-92551a2b5a4bb30f.rmeta: crates/bench/benches/model_ablations.rs Cargo.toml

crates/bench/benches/model_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
