/root/repo/target/debug/deps/physics_integration-34fdd3b2e95bb64e.d: tests/physics_integration.rs Cargo.toml

/root/repo/target/debug/deps/libphysics_integration-34fdd3b2e95bb64e.rmeta: tests/physics_integration.rs Cargo.toml

tests/physics_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
