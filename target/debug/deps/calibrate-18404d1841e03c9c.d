/root/repo/target/debug/deps/calibrate-18404d1841e03c9c.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-18404d1841e03c9c: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
