/root/repo/target/debug/deps/table2_directives-2eaf3df21291bd3e.d: crates/bench/src/bin/table2_directives.rs

/root/repo/target/debug/deps/table2_directives-2eaf3df21291bd3e: crates/bench/src/bin/table2_directives.rs

crates/bench/src/bin/table2_directives.rs:
