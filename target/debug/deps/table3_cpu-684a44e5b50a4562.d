/root/repo/target/debug/deps/table3_cpu-684a44e5b50a4562.d: crates/bench/src/bin/table3_cpu.rs

/root/repo/target/debug/deps/table3_cpu-684a44e5b50a4562: crates/bench/src/bin/table3_cpu.rs

crates/bench/src/bin/table3_cpu.rs:
