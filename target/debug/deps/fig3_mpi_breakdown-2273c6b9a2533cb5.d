/root/repo/target/debug/deps/fig3_mpi_breakdown-2273c6b9a2533cb5.d: crates/bench/src/bin/fig3_mpi_breakdown.rs

/root/repo/target/debug/deps/fig3_mpi_breakdown-2273c6b9a2533cb5: crates/bench/src/bin/fig3_mpi_breakdown.rs

crates/bench/src/bin/fig3_mpi_breakdown.rs:
