/root/repo/target/debug/deps/fig_portability-ab5d1a4a9311e9de.d: crates/bench/src/bin/fig_portability.rs Cargo.toml

/root/repo/target/debug/deps/libfig_portability-ab5d1a4a9311e9de.rmeta: crates/bench/src/bin/fig_portability.rs Cargo.toml

crates/bench/src/bin/fig_portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
