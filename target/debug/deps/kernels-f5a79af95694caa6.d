/root/repo/target/debug/deps/kernels-f5a79af95694caa6.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-f5a79af95694caa6: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
