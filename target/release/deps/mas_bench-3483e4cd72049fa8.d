/root/repo/target/release/deps/mas_bench-3483e4cd72049fa8.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libmas_bench-3483e4cd72049fa8.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libmas_bench-3483e4cd72049fa8.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/paper.rs:
