/root/repo/target/release/deps/minimpi-cfb1cf8ae29f9af8.d: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

/root/repo/target/release/deps/libminimpi-cfb1cf8ae29f9af8.rlib: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

/root/repo/target/release/deps/libminimpi-cfb1cf8ae29f9af8.rmeta: crates/minimpi/src/lib.rs crates/minimpi/src/chan.rs crates/minimpi/src/comm.rs crates/minimpi/src/world.rs

crates/minimpi/src/lib.rs:
crates/minimpi/src/chan.rs:
crates/minimpi/src/comm.rs:
crates/minimpi/src/world.rs:
