/root/repo/target/release/deps/ablation_visc_solvers-c33ba08f767ae504.d: crates/bench/src/bin/ablation_visc_solvers.rs

/root/repo/target/release/deps/ablation_visc_solvers-c33ba08f767ae504: crates/bench/src/bin/ablation_visc_solvers.rs

crates/bench/src/bin/ablation_visc_solvers.rs:
