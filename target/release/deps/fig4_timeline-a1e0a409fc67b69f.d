/root/repo/target/release/deps/fig4_timeline-a1e0a409fc67b69f.d: crates/bench/src/bin/fig4_timeline.rs

/root/repo/target/release/deps/fig4_timeline-a1e0a409fc67b69f: crates/bench/src/bin/fig4_timeline.rs

crates/bench/src/bin/fig4_timeline.rs:
