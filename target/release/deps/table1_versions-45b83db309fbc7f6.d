/root/repo/target/release/deps/table1_versions-45b83db309fbc7f6.d: crates/bench/src/bin/table1_versions.rs

/root/repo/target/release/deps/table1_versions-45b83db309fbc7f6: crates/bench/src/bin/table1_versions.rs

crates/bench/src/bin/table1_versions.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
