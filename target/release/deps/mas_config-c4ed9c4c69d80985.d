/root/repo/target/release/deps/mas_config-c4ed9c4c69d80985.d: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

/root/repo/target/release/deps/libmas_config-c4ed9c4c69d80985.rlib: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

/root/repo/target/release/deps/libmas_config-c4ed9c4c69d80985.rmeta: crates/config/src/lib.rs crates/config/src/deck.rs crates/config/src/parse.rs

crates/config/src/lib.rs:
crates/config/src/deck.rs:
crates/config/src/parse.rs:
