/root/repo/target/release/deps/fig1_visualization-06a69ff8cc2e10a2.d: crates/bench/src/bin/fig1_visualization.rs

/root/repo/target/release/deps/fig1_visualization-06a69ff8cc2e10a2: crates/bench/src/bin/fig1_visualization.rs

crates/bench/src/bin/fig1_visualization.rs:
