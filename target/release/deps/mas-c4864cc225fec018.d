/root/repo/target/release/deps/mas-c4864cc225fec018.d: src/bin/mas.rs

/root/repo/target/release/deps/mas-c4864cc225fec018: src/bin/mas.rs

src/bin/mas.rs:
