/root/repo/target/release/deps/fig2_scaling-db9835c81c1092f9.d: crates/bench/src/bin/fig2_scaling.rs

/root/repo/target/release/deps/fig2_scaling-db9835c81c1092f9: crates/bench/src/bin/fig2_scaling.rs

crates/bench/src/bin/fig2_scaling.rs:
