/root/repo/target/release/deps/calibrate-aa6cc3380693d968.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-aa6cc3380693d968: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
