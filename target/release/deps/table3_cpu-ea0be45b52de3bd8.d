/root/repo/target/release/deps/table3_cpu-ea0be45b52de3bd8.d: crates/bench/src/bin/table3_cpu.rs

/root/repo/target/release/deps/table3_cpu-ea0be45b52de3bd8: crates/bench/src/bin/table3_cpu.rs

crates/bench/src/bin/table3_cpu.rs:
