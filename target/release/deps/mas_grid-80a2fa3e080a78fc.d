/root/repo/target/release/deps/mas_grid-80a2fa3e080a78fc.d: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

/root/repo/target/release/deps/libmas_grid-80a2fa3e080a78fc.rlib: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

/root/repo/target/release/deps/libmas_grid-80a2fa3e080a78fc.rmeta: crates/grid/src/lib.rs crates/grid/src/index.rs crates/grid/src/mesh1d.rs crates/grid/src/spherical.rs crates/grid/src/stagger.rs

crates/grid/src/lib.rs:
crates/grid/src/index.rs:
crates/grid/src/mesh1d.rs:
crates/grid/src/spherical.rs:
crates/grid/src/stagger.rs:
