/root/repo/target/release/deps/fig3_mpi_breakdown-110bfb107363be08.d: crates/bench/src/bin/fig3_mpi_breakdown.rs

/root/repo/target/release/deps/fig3_mpi_breakdown-110bfb107363be08: crates/bench/src/bin/fig3_mpi_breakdown.rs

crates/bench/src/bin/fig3_mpi_breakdown.rs:
