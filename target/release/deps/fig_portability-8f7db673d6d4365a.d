/root/repo/target/release/deps/fig_portability-8f7db673d6d4365a.d: crates/bench/src/bin/fig_portability.rs

/root/repo/target/release/deps/fig_portability-8f7db673d6d4365a: crates/bench/src/bin/fig_portability.rs

crates/bench/src/bin/fig_portability.rs:
