/root/repo/target/release/deps/gpusim-4ce41f40170b853e.d: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

/root/repo/target/release/deps/libgpusim-4ce41f40170b853e.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

/root/repo/target/release/deps/libgpusim-4ce41f40170b853e.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/clock.rs crates/gpusim/src/context.rs crates/gpusim/src/memory.rs crates/gpusim/src/profiler.rs crates/gpusim/src/spec.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/clock.rs:
crates/gpusim/src/context.rs:
crates/gpusim/src/memory.rs:
crates/gpusim/src/profiler.rs:
crates/gpusim/src/spec.rs:
