/root/repo/target/release/deps/table2_directives-368e8e1e6a6438c4.d: crates/bench/src/bin/table2_directives.rs

/root/repo/target/release/deps/table2_directives-368e8e1e6a6438c4: crates/bench/src/bin/table2_directives.rs

crates/bench/src/bin/table2_directives.rs:
