/root/repo/target/release/deps/mas_field-eb9dab2182054f60.d: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

/root/repo/target/release/deps/libmas_field-eb9dab2182054f60.rlib: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

/root/repo/target/release/deps/libmas_field-eb9dab2182054f60.rmeta: crates/field/src/lib.rs crates/field/src/array3.rs crates/field/src/field.rs crates/field/src/halo.rs crates/field/src/norms.rs crates/field/src/parview.rs

crates/field/src/lib.rs:
crates/field/src/array3.rs:
crates/field/src/field.rs:
crates/field/src/halo.rs:
crates/field/src/norms.rs:
crates/field/src/parview.rs:
