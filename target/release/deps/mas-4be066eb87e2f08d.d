/root/repo/target/release/deps/mas-4be066eb87e2f08d.d: src/lib.rs

/root/repo/target/release/deps/libmas-4be066eb87e2f08d.rlib: src/lib.rs

/root/repo/target/release/deps/libmas-4be066eb87e2f08d.rmeta: src/lib.rs

src/lib.rs:
