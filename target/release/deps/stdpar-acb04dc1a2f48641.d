/root/repo/target/release/deps/stdpar-acb04dc1a2f48641.d: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

/root/repo/target/release/deps/libstdpar-acb04dc1a2f48641.rlib: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

/root/repo/target/release/deps/libstdpar-acb04dc1a2f48641.rmeta: crates/stdpar/src/lib.rs crates/stdpar/src/audit.rs crates/stdpar/src/engine.rs crates/stdpar/src/exec.rs crates/stdpar/src/site.rs crates/stdpar/src/version.rs

crates/stdpar/src/lib.rs:
crates/stdpar/src/audit.rs:
crates/stdpar/src/engine.rs:
crates/stdpar/src/exec.rs:
crates/stdpar/src/site.rs:
crates/stdpar/src/version.rs:
