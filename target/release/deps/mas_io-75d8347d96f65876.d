/root/repo/target/release/deps/mas_io-75d8347d96f65876.d: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

/root/repo/target/release/deps/libmas_io-75d8347d96f65876.rlib: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

/root/repo/target/release/deps/libmas_io-75d8347d96f65876.rmeta: crates/io/src/lib.rs crates/io/src/csv.rs crates/io/src/dump.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/timeline.rs

crates/io/src/lib.rs:
crates/io/src/csv.rs:
crates/io/src/dump.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/timeline.rs:
