/root/repo/target/release/libmas_config.rlib: /root/repo/crates/config/src/deck.rs /root/repo/crates/config/src/lib.rs /root/repo/crates/config/src/parse.rs
