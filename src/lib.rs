#![warn(missing_docs)]
//! # mas
//!
//! Facade crate for **mas-rs**, a Rust reproduction of
//! *"Acceleration of a production Solar MHD code with Fortran standard
//! parallelism: From OpenACC to `do concurrent`"*
//! (Caplan, Stulajter & Linker, 2023, arXiv:2303.03398).
//!
//! This crate re-exports the whole workspace so examples, integration tests
//! and downstream users get a single import surface:
//!
//! * [`grid`] — non-uniform staggered spherical meshes;
//! * [`field`] — ghost-extended 3-D arrays and staggered fields;
//! * [`gpusim`] — the virtual accelerator (device model, memory manager,
//!   unified-memory pager, profiler);
//! * [`minimpi`] — the thread-rank message-passing substrate with a
//!   virtual-time cost model;
//! * [`stdpar`] — the programming-model layer: the paper's six code
//!   versions, kernel-site registry, and directive audit;
//! * [`mhd`] — the thermodynamic solar-MHD solver itself;
//! * [`config`] — namelist-style input decks and problem presets;
//! * [`io`] — table printers, CSV writers, image renders, timelines.
//!
//! ## Quickstart
//!
//! ```no_run
//! use mas::prelude::*;
//!
//! // A small coronal relaxation on one virtual GPU with the original
//! // OpenACC-style execution policy (paper "Code 1 (A)").
//! let deck = mas::config::Deck::preset_quickstart();
//! let report = mas::mhd::run_single_rank(&deck, CodeVersion::A);
//! println!("steps: {}, wall (model): {:.2} s", report.steps, report.wall_seconds());
//! ```

pub use gpusim;
pub use mas_config as config;
pub use mas_field as field;
pub use mas_grid as grid;
pub use mas_io as io;
pub use mas_mhd as mhd;
pub use minimpi;
pub use stdpar;

/// Commonly used items, for `use mas::prelude::*`.
pub mod prelude {
    pub use crate::config::Deck;
    pub use crate::field::{Array3, Field};
    pub use crate::grid::{IndexSpace3, Mesh1d, SphericalGrid, Stagger};
    pub use crate::gpusim::{DeviceSpec, Profiler, TimeCategory};
    pub use crate::mhd::{RunReport, Simulation, SimulationBuilder};
    pub use crate::stdpar::CodeVersion;
}
