//! `mas` — the command-line driver: read a namelist deck, run the solver
//! under a chosen code version / device / rank count, and report.
//!
//! ```text
//! mas <deck-file> [--version A|AD|ADU|AD2XU|D2XU|D2XAd]
//!                 [--ranks N] [--device gpu|cpu] [--seed N]
//!                 [--paper-cells N] [--audit] [--profile] [--hist-csv PATH]
//!                 [--restart PATH]
//! mas --preset quickstart|coronal_background|flux_rope [same options]
//! ```
//!
//! `--audit` (or `MAS_PAR_AUDIT=1`, or `par_audit = .true.` in the deck)
//! runs the dynamic race auditor: every tiled kernel is checked against
//! the `do concurrent` iteration-independence contract and the run exits
//! non-zero if any kernel violates it.
//!
//! `--restart PATH` resumes from a checkpoint: either a single `.dump`
//! file or a checkpoint directory (the per-rank two-slot rotation written
//! by `checkpoint_interval > 0` in the deck's `&checkpoint` section).
//!
//! Exit codes: 0 success, 1 race-audit violation, 2 usage/deck error,
//! 3 unrecoverable run failure (rank panic, lost message, exhausted
//! rollback budget), 4 respawn budget exhausted (a rank died more times
//! than `&resilience max_respawns` allows).

use gpusim::DeviceSpec;
use mas::prelude::*;
use std::process::ExitCode;

struct Args {
    deck: Deck,
    version: CodeVersion,
    ranks: usize,
    spec: DeviceSpec,
    seed: u64,
    profile: bool,
    hist_csv: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mas <deck-file | --preset NAME> [options]\n\
         \n\
         options:\n\
           --preset NAME        quickstart | coronal_background | flux_rope\n\
           --version V          A | AD | ADU | AD2XU | D2XU | D2XAd   (default A)\n\
           --ranks N            MPI ranks / GPUs (default 1)\n\
           --device gpu|cpu|mi250  A100 node, EPYC node, or modeled MI250X (default gpu)\n\
           --seed N             jitter seed (default 1)\n\
           --paper-cells N      cost-model extrapolation target (overrides deck)\n\
           --audit              check every tiled kernel against the do-concurrent\n\
                                iteration-independence contract (MAS_PAR_AUDIT=1)\n\
           --profile            record and print a profiler timeline\n\
           --hist-csv PATH      write the diagnostic history as CSV\n\
           --restart PATH       resume from a checkpoint dump file or directory\n\
         \n\
         exit codes: 0 ok | 1 race audit failed | 2 usage | 3 run failed |\n\
                     4 respawn budget exhausted"
    );
    std::process::exit(2);
}

fn parse_version(s: &str) -> Option<CodeVersion> {
    CodeVersion::ALL
        .into_iter()
        .find(|v| v.tag().eq_ignore_ascii_case(s))
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let mut deck: Option<Deck> = None;
    let mut version = CodeVersion::A;
    let mut ranks = 1usize;
    let mut spec = DeviceSpec::a100_40gb();
    let mut seed = 1u64;
    let mut audit = false;
    let mut profile = false;
    let mut hist_csv = None;
    let mut paper_cells: Option<usize> = None;
    let mut restart: Option<String> = None;

    let next_val = |argv: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
                        flag: &str|
     -> Result<String, String> {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };

    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--preset" => {
                let name = next_val(&mut argv, "--preset")?;
                deck = Some(match name.as_str() {
                    "quickstart" => Deck::preset_quickstart(),
                    "coronal_background" => Deck::preset_coronal_background(),
                    "flux_rope" => Deck::preset_flux_rope(),
                    other => return Err(format!("unknown preset '{other}'")),
                });
            }
            "--version" => {
                let v = next_val(&mut argv, "--version")?;
                version = parse_version(&v).ok_or(format!("unknown version '{v}'"))?;
            }
            "--ranks" => {
                ranks = next_val(&mut argv, "--ranks")?
                    .parse()
                    .map_err(|e| format!("--ranks: {e}"))?;
            }
            "--device" => match next_val(&mut argv, "--device")?.as_str() {
                "gpu" | "a100" => spec = DeviceSpec::a100_40gb(),
                "cpu" => spec = DeviceSpec::epyc_7742_node(),
                "mi250" => spec = DeviceSpec::mi250x_gcd(),
                other => return Err(format!("unknown device '{other}'")),
            },
            "--seed" => {
                seed = next_val(&mut argv, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--paper-cells" => {
                paper_cells = Some(
                    next_val(&mut argv, "--paper-cells")?
                        .parse()
                        .map_err(|e| format!("--paper-cells: {e}"))?,
                );
            }
            "--audit" => audit = true,
            "--profile" => profile = true,
            "--hist-csv" => hist_csv = Some(next_val(&mut argv, "--hist-csv")?),
            "--restart" => restart = Some(next_val(&mut argv, "--restart")?),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read deck '{path}': {e}"))?;
                deck = Some(Deck::parse(&text).map_err(|e| e.to_string())?);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let mut deck = deck.ok_or("no deck file or --preset given".to_string())?;
    if let Some(pc) = paper_cells {
        deck.paper_cells = pc;
    }
    if audit {
        deck.par_audit = true;
    }
    if let Some(r) = restart {
        deck.checkpoint.restart_from = r;
    }
    deck.validated().map_err(|e| e.to_string())?;
    Ok(Args {
        deck,
        version,
        ranks,
        spec,
        seed,
        profile,
        hist_csv,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mas: {e}\n");
            usage();
        }
    };

    println!(
        "mas-rs: '{}' | {}x{}x{} cells | {} steps | {} | {} rank(s) on {}",
        args.deck.problem,
        args.deck.grid.nr,
        args.deck.grid.nt,
        args.deck.grid.np,
        args.deck.time.n_steps,
        args.version.label(),
        args.ranks,
        args.spec.name,
    );
    if args.deck.paper_cells > 0 {
        println!(
            "cost model extrapolates to {} cells (x{:.0} volume scale)",
            args.deck.paper_cells,
            args.deck.volume_scale()
        );
    }

    if args.deck.fault_armed() {
        println!(
            "fault armed: {} at step {} on rank {}",
            args.deck.fault.kind.name(),
            args.deck.fault.step,
            args.deck.fault.rank
        );
    }
    if args.deck.resilience.max_respawns > 0 {
        println!(
            "resilience: heartbeat every {} ms (miss budget {}), up to {} respawn(s)",
            args.deck.resilience.heartbeat_ms,
            args.deck.resilience.miss_budget,
            args.deck.resilience.max_respawns
        );
    }

    let t_real = std::time::Instant::now();
    let report = match mas::mhd::run_supervised(
        &args.deck,
        args.version,
        args.spec.clone(),
        args.ranks,
        args.seed,
        args.profile,
    ) {
        Ok(r) => r,
        Err(e) => {
            // Unrecoverable: rank panic, lost message, exhausted recovery
            // budget, failed restart. Distinct exit codes so job scripts
            // can tell "physics failed" (3) from "bad invocation" (2)
            // from "rank kept dying past the respawn budget" (4).
            eprintln!("mas: run FAILED — {e}");
            return ExitCode::from(if e.respawns_exhausted { 4 } else { 3 });
        }
    };
    let elapsed = t_real.elapsed();

    let r0 = &report.ranks[0];
    println!("\nrun complete in {:.2} s (host):", elapsed.as_secs_f64());
    println!(
        "  model wall  : {:>10.3} s  ({:.2} model minutes)",
        report.wall_us() / 1e6,
        report.wall_us() / 60.0e6
    );
    println!(
        "  model MPI   : {:>10.3} s  ({:.1}% of wall)",
        report.mean_mpi_us() / 1e6,
        100.0 * report.mean_mpi_us() / report.wall_us()
    );
    println!("  kernel launches (all ranks): {}", report.total_launches());
    println!("  state hash  : {:016x}", r0.state_hash);
    println!("  recovery    : {}", r0.recovery.summary());
    if let Some(h) = r0.hist.last() {
        println!("\nfinal diagnostics:");
        println!("  t = {:.5}, dt = {:.3e}", h.time, h.dt);
        println!(
            "  mass {:.6e} | E_kin {:.4e} | E_mag {:.4e} | E_therm {:.4e}",
            h.diag.mass, h.diag.ekin, h.diag.emag, h.diag.etherm
        );
        println!(
            "  max|divB| {:.2e} | T_min {:.4} | |v|_max {:.4}",
            h.diag.divb_max, h.diag.temp_min, h.diag.speed_max
        );
    }

    if let Some(path) = &args.hist_csv {
        let mut csv = mas::io::CsvWriter::create(
            path,
            &["step", "time", "dt", "mass", "ekin", "emag", "etherm", "divb_max"],
        )
        .expect("csv");
        for h in &r0.hist {
            csv.row(&[
                h.step.to_string(),
                format!("{}", h.time),
                format!("{}", h.dt),
                format!("{}", h.diag.mass),
                format!("{}", h.diag.ekin),
                format!("{}", h.diag.emag),
                format!("{}", h.diag.etherm),
                format!("{}", h.diag.divb_max),
            ])
            .unwrap();
        }
        csv.flush().unwrap();
        println!("\nwrote {path}");
    }

    if args.profile {
        // nsys-stats-style kernel census from the site registry.
        let top = r0.registry.top_sites();
        let total = r0.registry.total_model_us().max(1e-300);
        println!("\ntop kernels by modeled GPU time (rank 0):");
        println!("{:>26} {:>10} {:>12} {:>7}", "kernel", "launches", "time (ms)", "share");
        for st in top.iter().take(12) {
            println!(
                "{:>26} {:>10} {:>12.3} {:>6.1}%",
                st.site.name,
                st.invocations,
                st.model_us / 1e3,
                100.0 * st.model_us / total
            );
        }

        let spans = &r0.spans;
        if let (Some(first), Some(last)) = (spans.first(), spans.last()) {
            let (t0, t1) = (first.t0, last.t1);
            let w0 = t0 + 0.4 * (t1 - t0);
            let w1 = t0 + 0.5 * (t1 - t0);
            println!("\n{}", mas::io::render_timeline(spans, w0, w1, 100, "rank 0"));
        }
    }

    // Race-audit verdict: report every rank; any violation fails the run.
    if report.ranks.iter().any(|r| r.race_audit.enabled) {
        let mut dirty = false;
        for r in &report.ranks {
            let a = &r.race_audit;
            if !a.is_clean() {
                dirty = true;
                println!("\nrank {}:", r.rank);
                print!("{}", a.report());
            }
        }
        if dirty {
            eprintln!("mas: race audit FAILED — see report above");
            return ExitCode::FAILURE;
        }
        print!("\n{}", r0.race_audit.report());
    }

    ExitCode::SUCCESS
}
