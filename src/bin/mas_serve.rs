//! `mas_serve` — the simulation-as-a-service daemon.
//!
//! Usage:
//!
//! ```text
//! mas_serve [--listen ADDR] [--devices N] [--workers N] [--queue N] [--quota N]
//!           [--state-dir DIR] [--wire-deadline-ms MS] [--drain]
//! mas_serve --drill
//! mas_serve --restart-drill
//! ```
//!
//! The default mode binds a TCP listener and speaks the `mas-serve` line
//! protocol (one request line, one response line — see
//! `mas_serve::wire`): `submit`, `status`, `wait`, `cancel`, `result`,
//! `stats`, `drain`, `shutdown`.
//!
//! With `--state-dir DIR` the server is **crash-only**: every state
//! transition is journaled durably under `DIR` and a restart with the
//! same directory replays it — completed results survive as cache
//! entries, interrupted jobs re-enter the queue, and a torn journal
//! tail is truncated. The recovery outcome is printed as a single
//! greppable `recovery:` line.
//!
//! `--drain` boots (recovering state if `--state-dir` is given), runs
//! every queued and recovered job to completion without accepting new
//! work, journals the terminal states, and exits 0 — the graceful
//! counterpart of kill -9. The same wind-down is reachable over the
//! wire with the `drain` request.
//!
//! `--drill` is the self-contained smoke sequence CI runs: boot a
//! 2-device server on an ephemeral port, then over real TCP submit a
//! tiny deck and wait for it, resubmit it and require a cache hit with
//! zero additional steps executed, and run a rank-death job to require
//! the supervisor's respawn recovery works under the scheduler.
//!
//! `--restart-drill` is the crash-recovery end-to-end check: spawn a
//! journaled child server, submit jobs, SIGKILL it mid-run, restart
//! over the same state directory, and require that nothing submitted
//! was lost, completed results survive as zero-step cache hits, and
//! jobs finished after the restart hash bit-identically to an
//! uninterrupted run. Both drills exit non-zero on any violation.

use mas_config::Deck;
use mas_serve::wire::{self, Request, WireRead};
use mas_serve::{JobId, RemoteClient, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: mas_serve [--listen ADDR] [--devices N] [--workers N] [--queue N] [--quota N]\n\
         \x20                [--state-dir DIR] [--wire-deadline-ms MS]\n\
         \x20                [--shed-depth N] [--shed-age-ms MS] [--drain]\n\
         \x20      mas_serve --drill | --restart-drill | --chaos-drill [--chaos-seed N]\n\
         \n\
         --listen ADDR         bind address               (default 127.0.0.1:4333)\n\
         --devices N           virtual device pool size   (default 4)\n\
         --workers N           concurrent jobs            (default = devices)\n\
         --queue N             queued-job backpressure cap (default 32)\n\
         --quota N             per-tenant live-job quota  (default 8)\n\
         --state-dir DIR       journal state transitions under DIR and\n\
         \x20                     recover them on restart (crash-only mode)\n\
         --wire-deadline-ms MS idle-connection read deadline (default 30000; 0 = none)\n\
         --shed-depth N        shed low-priority queued work past this queue depth (0 = off)\n\
         --shed-age-ms MS      shed when the oldest queued job is older than MS (0 = off)\n\
         --drain               finish all queued/recovered jobs, journal, exit 0\n\
         --drill               run the self-test smoke sequence and exit\n\
         --restart-drill       run the kill -9 / recovery sequence and exit\n\
         --chaos-drill         run the seeded chaos soak and exit\n\
         --chaos-seed N        schedule seed for --chaos-drill (default 42)"
    );
    std::process::exit(2);
}

struct Opts {
    listen: String,
    devices: usize,
    workers: Option<usize>,
    queue: usize,
    quota: usize,
    state_dir: Option<String>,
    wire_deadline_ms: u64,
    shed_depth: usize,
    shed_age_ms: u64,
    drain: bool,
    drill: bool,
    restart_drill: bool,
    chaos_drill: bool,
    chaos_seed: u64,
}

impl Opts {
    fn defaults() -> Self {
        Opts {
            listen: "127.0.0.1:4333".into(),
            devices: 4,
            workers: None,
            queue: 32,
            quota: 8,
            state_dir: None,
            wire_deadline_ms: 30_000,
            shed_depth: 0,
            shed_age_ms: 0,
            drain: false,
            drill: false,
            restart_drill: false,
            chaos_drill: false,
            chaos_seed: 42,
        }
    }
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts::defaults();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut val = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--listen" => o.listen = val("--listen")?,
            "--devices" => o.devices = val("--devices")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => {
                o.workers = Some(val("--workers")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--queue" => o.queue = val("--queue")?.parse().map_err(|e| format!("{e}"))?,
            "--quota" => o.quota = val("--quota")?.parse().map_err(|e| format!("{e}"))?,
            "--state-dir" => o.state_dir = Some(val("--state-dir")?),
            "--wire-deadline-ms" => {
                o.wire_deadline_ms = val("--wire-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--shed-depth" => {
                o.shed_depth = val("--shed-depth")?.parse().map_err(|e| format!("{e}"))?
            }
            "--shed-age-ms" => {
                o.shed_age_ms = val("--shed-age-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--drain" => o.drain = true,
            "--drill" => o.drill = true,
            "--restart-drill" => o.restart_drill = true,
            "--chaos-drill" => o.chaos_drill = true,
            "--chaos-seed" => {
                o.chaos_seed = val("--chaos-seed")?.parse().map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => usage(),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(o)
}

/// Boot the server the options describe: journaled (with a recovery
/// summary printed) when `--state-dir` is given, in-memory otherwise.
fn server_from(o: &Opts) -> Result<Arc<Server>, String> {
    let mut cfg = ServerConfig::new(gpusim::DeviceSpec::a100_40gb(), o.devices);
    cfg.n_workers = o.workers.unwrap_or(o.devices);
    cfg.max_queue = o.queue;
    cfg.tenant_quota = o.quota;
    cfg.shed_queue_depth = o.shed_depth;
    cfg.shed_oldest_ms = o.shed_age_ms;
    match &o.state_dir {
        Some(dir) => {
            let (server, summary) = Server::recover(cfg, dir)
                .map_err(|e| format!("cannot recover state dir '{dir}': {e}"))?;
            println!("mas_serve: recovery: {summary}");
            Ok(server)
        }
        None => Ok(Server::start(cfg)),
    }
}

/// One response line for one request line (the blocking control verbs —
/// `drain`, `shutdown` — are handled by the connection loop instead).
fn respond(server: &Arc<Server>, req: Request) -> String {
    match req {
        Request::Submit(spec) => match server.submit(*spec) {
            Ok(id) => format!("ok id={}", id.0),
            // The overload rejection carries a machine-readable hint the
            // RemoteClient's retry loop honors.
            Err(e @ mas_serve::SubmitError::Overloaded { retry_after_ms }) => format!(
                "err {} retry_after_ms={retry_after_ms}",
                wire::escape(&e.to_string())
            ),
            Err(e) => format!("err {}", wire::escape(&e.to_string())),
        },
        Request::Status(id) => match server.status(JobId(id)) {
            Some(s) => wire::encode_status(&s),
            None => format!("err unknown job id {id}"),
        },
        Request::Wait(id) => match server.wait(JobId(id)) {
            Some(s) => wire::encode_status(&s),
            None => format!("err unknown job id {id}"),
        },
        Request::Cancel(id) => match server.cancel(JobId(id)) {
            Ok(()) => format!("ok id={id}"),
            Err(e) => format!("err {}", wire::escape(&e)),
        },
        Request::Result(id) => match server.result(JobId(id)) {
            Some(Ok(report)) => {
                let hashes: Vec<String> = report
                    .ranks
                    .iter()
                    .map(|r| format!("{:016x}", r.state_hash))
                    .collect();
                let steps: usize = report.ranks.first().map_or(0, |r| r.steps);
                format!(
                    "ok id={id} ranks={} steps={steps} hashes={}",
                    report.ranks.len(),
                    hashes.join(",")
                )
            }
            Some(Err(e)) => format!("err {}", wire::escape(&e)),
            None => format!("err job {id} is not finished (use 'wait id={id}')"),
        },
        Request::Stats => {
            let s = server.stats();
            let tenants = if s.tenants_queued.is_empty() {
                "-".to_string()
            } else {
                s.tenants_queued
                    .iter()
                    .map(|(t, n)| format!("{t}:{n}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let health = s
                .devices
                .iter()
                .map(|d| {
                    format!(
                        "{}:{}:{}:{}",
                        d.id,
                        if d.suspect { "suspect" } else { "ok" },
                        d.consecutive_failures,
                        d.total_failures
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "ok devices={} free={} busy={} suspect={} queued={} running={} done={} \
                 failed={} cancelled={} quarantined={} cache_hits={} cache_misses={} \
                 cache_entries={} cache_evictions={} total_steps={} oldest_queued_ms={} \
                 shed_total={} deadline_exceeded={} worker_panics={} quarantine_keys={} \
                 reinstated={} tenants={} health={}",
                s.pool.total,
                s.pool.free,
                s.pool.busy,
                s.pool.suspect,
                s.queued,
                s.running,
                s.done,
                s.failed,
                s.cancelled,
                s.quarantined,
                s.cache_hits,
                s.cache_misses,
                s.cache_entries,
                s.cache_evictions,
                s.total_steps,
                s.oldest_queued_ms,
                s.shed_total,
                s.deadline_exceeded,
                s.worker_panics,
                s.quarantine_keys,
                s.pool.reinstated,
                tenants,
                health
            )
        }
        Request::QuarantineList => {
            let list = server.quarantine_list();
            let keys = if list.is_empty() {
                "-".to_string()
            } else {
                list.iter()
                    .map(|(k, _)| {
                        format!("{}:{}:{}:{}", k.deck_hash, k.version.tag(), k.n_ranks, k.seed)
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!("ok n={} keys={keys}", list.len())
        }
        Request::QuarantineClear(hash) => {
            format!("ok cleared={}", server.quarantine_clear(hash))
        }
        Request::Inject { device, count } => match server.pool().inject_fault(device, count) {
            Ok(()) => format!("ok device={device} injected={count}"),
            Err(e) => format!("err {}", wire::escape(&e)),
        },
        Request::Drain | Request::Shutdown => unreachable!("handled by the connection loop"),
    }
}

/// Accept loop: one thread per connection, one response line per
/// request line, every read bounded in both size and time. Returns when
/// a `shutdown` or `drain` request arrives (after honouring it).
fn serve(listener: TcpListener, server: Arc<Server>, deadline: Option<Duration>) {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr().expect("listener address");
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = server.clone();
        let stop = stop.clone();
        conns.push(std::thread::spawn(move || {
            // A silent peer may not pin this thread forever: reads time
            // out after the wire deadline and the connection closes.
            let _ = stream.set_read_timeout(deadline);
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut out = stream;
            loop {
                let line = match wire::read_request_line(&mut reader) {
                    Ok(WireRead::Line(l)) => l,
                    Ok(WireRead::Eof) => return,
                    Ok(WireRead::TooLong) => {
                        // The stream may be mid-line garbage: answer and
                        // close rather than trying to resynchronise.
                        let _ = writeln!(
                            out,
                            "err request line exceeds {} bytes",
                            wire::MAX_LINE
                        );
                        return;
                    }
                    Ok(WireRead::BadUtf8) => {
                        // The line boundary is intact; the connection
                        // can continue.
                        let _ = writeln!(out, "err request is not valid UTF-8");
                        let _ = out.flush();
                        continue;
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        let _ = writeln!(out, "err idle timeout; closing connection");
                        return;
                    }
                    Err(_) => return,
                };
                if line.trim().is_empty() {
                    continue;
                }
                let req = match wire::parse_request(&line) {
                    Ok(req) => req,
                    Err(e) => {
                        if writeln!(out, "err {}", wire::escape(&e)).is_err() {
                            return;
                        }
                        let _ = out.flush();
                        continue;
                    }
                };
                let (reply, stops) = match req {
                    Request::Shutdown => {
                        server.shutdown();
                        ("ok shutting-down".to_string(), true)
                    }
                    Request::Drain => {
                        // Blocks until every queued and running job has
                        // finished and journaled; the reply is the
                        // completion signal.
                        server.drain();
                        ("ok drained".to_string(), true)
                    }
                    req => (respond(&server, req), false),
                };
                if writeln!(out, "{reply}").is_err() {
                    return;
                }
                let _ = out.flush();
                if stops {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop with a throwaway connection.
                    let _ = TcpStream::connect(addr);
                    return;
                }
            }
        }));
    }
    for c in conns {
        let _ = c.join();
    }
    server.join();
}

// -- drill mode -------------------------------------------------------------

/// Send one request line on a fresh connection, return the response line.
fn request(addr: &str, line: &str) -> Result<String, String> {
    RemoteClient::connect(addr).request(line)
}

fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        println!("drill: PASS {what}");
        Ok(())
    } else {
        Err(format!("FAIL {what}"))
    }
}

fn field_of(reply: &str, key: &str) -> Option<String> {
    RemoteClient::field(reply, key).ok()
}

fn tiny_deck() -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = 4;
    d.output.hist_interval = 0;
    d
}

fn drill() -> Result<(), String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    let server = server_from(&Opts {
        listen: addr.clone(),
        devices: 2,
        workers: Some(2),
        queue: 8,
        ..Opts::defaults()
    })?;
    let srv = std::thread::spawn(move || serve(listener, server, None));
    println!("drill: serving on {addr}");

    // 1. A tiny deck runs to completion over the wire.
    let spec = mas_serve::JobSpec::new(tiny_deck()).tenant("drill").seed(7);
    let r = request(&addr, &wire::encode_submit(&spec))?;
    expect(r == "ok id=1", &format!("submit accepted ({r})"))?;
    let r = request(&addr, "wait id=1")?;
    expect(
        field_of(&r, "state").as_deref() == Some("done"),
        &format!("job 1 done ({r})"),
    )?;
    let r = request(&addr, "stats")?;
    let steps_after_first: u64 = field_of(&r, "total_steps")
        .and_then(|s| s.parse().ok())
        .ok_or(format!("no total_steps in '{r}'"))?;
    expect(steps_after_first > 0, "first run executed steps")?;
    let hashes1 = field_of(&request(&addr, "result id=1")?, "hashes");

    // 2. Resubmission is a cache hit: done instantly, zero new steps,
    //    identical result.
    let r = request(&addr, &wire::encode_submit(&spec))?;
    expect(r == "ok id=2", &format!("resubmit accepted ({r})"))?;
    let r = request(&addr, "wait id=2")?;
    expect(
        field_of(&r, "cached").as_deref() == Some("true"),
        &format!("resubmission served from cache ({r})"),
    )?;
    let r = request(&addr, "stats")?;
    expect(
        field_of(&r, "cache_hits").as_deref() == Some("1"),
        &format!("cache hit counted ({r})"),
    )?;
    let steps_after_second: u64 = field_of(&r, "total_steps")
        .and_then(|s| s.parse().ok())
        .ok_or(format!("no total_steps in '{r}'"))?;
    expect(
        steps_after_second == steps_after_first,
        "cache hit executed zero steps",
    )?;
    let hashes2 = field_of(&request(&addr, "result id=2")?, "hashes");
    expect(
        hashes1.is_some() && hashes1 == hashes2,
        "cached result is bit-identical",
    )?;

    // 3. Hostile wire input answers structurally, never with a hang or
    //    a dead thread.
    let r = request(&addr, "explode please")?;
    expect(r.starts_with("err "), &format!("unknown verb answered ({r})"))?;
    {
        let stream = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
        let mut w = &stream;
        w.write_all(b"\xff\xfe not utf8\nstats\n")
            .map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(&stream);
        let mut l1 = String::new();
        reader.read_line(&mut l1).map_err(|e| e.to_string())?;
        expect(
            l1.starts_with("err "),
            &format!("invalid UTF-8 answered structurally ({})", l1.trim_end()),
        )?;
        let mut l2 = String::new();
        reader.read_line(&mut l2).map_err(|e| e.to_string())?;
        expect(
            l2.starts_with("ok "),
            "connection survives a bad-UTF-8 line",
        )?;
    }

    // 4. Kill a rank mid-job: the supervisor's respawn recovery must
    //    work underneath the scheduler.
    let dir = std::env::temp_dir().join("mas_serve_drill");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let mut deck = tiny_deck();
    deck.checkpoint.interval = 2;
    deck.checkpoint.dir = dir.to_string_lossy().into_owned();
    deck.resilience.max_respawns = 1;
    deck.resilience.heartbeat_ms = 10;
    deck.resilience.miss_budget = 5;
    deck.resilience.recv_deadline_ms = 500;
    deck.fault.kind = mas_config::FaultKind::Panic;
    // Step 3: past the step-2 checkpoint commit, so the respawned rank
    // restores from disk rather than replaying from scratch.
    deck.fault.step = 3;
    deck.fault.rank = 1;
    deck.fault.count = 1;
    let spec = mas_serve::JobSpec::new(deck).tenant("drill").ranks(2).seed(7);
    let r = request(&addr, &wire::encode_submit(&spec))?;
    expect(r == "ok id=3", &format!("rank-death job accepted ({r})"))?;
    let r = request(&addr, "wait id=3")?;
    expect(
        field_of(&r, "state").as_deref() == Some("done"),
        &format!("rank-death job recovered to completion ({r})"),
    )?;
    let recoveries: usize = field_of(&r, "recovery")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    expect(recoveries > 0, "recovery events were streamed")?;

    // 5. Clean shutdown over the wire.
    let r = request(&addr, "shutdown")?;
    expect(r == "ok shutting-down", &format!("shutdown accepted ({r})"))?;
    srv.join().map_err(|_| "server thread panicked".to_string())?;
    println!("drill: all checks passed");
    Ok(())
}

// -- restart drill (kill -9 / recovery) -------------------------------------

/// A journaled child server process plus the address it bound.
struct ChildServer {
    child: std::process::Child,
    addr: String,
    recovery: Option<String>,
}

/// Spawn this same binary as a journaled server on an ephemeral port
/// and parse its startup lines for the bound address (and the recovery
/// summary, when a state dir is recovered).
fn spawn_server(state_dir: &std::path::Path, workers: usize) -> Result<ChildServer, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut child = std::process::Command::new(exe)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--devices",
            "2",
            "--workers",
            &workers.to_string(),
            "--state-dir",
            &state_dir.to_string_lossy(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn server: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    let mut recovery = None;
    let mut line = String::new();
    while addr.is_none() {
        line.clear();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            let _ = child.kill();
            return Err("server exited before announcing its address".into());
        }
        print!("restart-drill: child: {line}");
        if let Some(rest) = line.split("recovery: ").nth(1) {
            recovery = Some(rest.trim_end().to_string());
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = rest.split_whitespace().next().map(str::to_string);
        }
    }
    // Keep draining child stdout in the background so it can't block on
    // a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                break;
            }
            print!("restart-drill: child: {sink}");
            sink.clear();
        }
    });
    Ok(ChildServer {
        child,
        addr: addr.expect("address parsed"),
        recovery,
    })
}

/// A deck big enough to give the kill a wide mid-run window.
fn slow_deck(n_steps: usize) -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = n_steps;
    d.output.hist_interval = 0;
    d
}

fn restart_drill() -> Result<(), String> {
    let state = std::env::temp_dir().join("mas_serve_restart_drill");
    let baseline = std::env::temp_dir().join("mas_serve_restart_drill_baseline");
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&baseline);

    // -- Phase 1: a journaled server takes one fast and two slow jobs -
    let a = spawn_server(&state, 1)?;
    let addr = a.addr.clone();
    let mut a_child = a.child;

    let fast = mas_serve::JobSpec::new(tiny_deck()).tenant("drill").seed(7);
    let slow1 = mas_serve::JobSpec::new(slow_deck(1500)).tenant("drill").seed(11);
    let slow2 = mas_serve::JobSpec::new(slow_deck(1500)).tenant("drill").seed(12);

    let r = request(&addr, &wire::encode_submit(&fast))?;
    expect(r == "ok id=1", &format!("fast job accepted ({r})"))?;
    let r = request(&addr, "wait id=1")?;
    expect(
        field_of(&r, "state").as_deref() == Some("done"),
        &format!("fast job done before the crash ({r})"),
    )?;
    let hashes_fast = field_of(&request(&addr, "result id=1")?, "hashes")
        .ok_or("no hashes for the fast job")?;

    // With one worker, slow1 runs while slow2 is pinned in the queue.
    let r = request(&addr, &wire::encode_submit(&slow1))?;
    expect(r == "ok id=2", &format!("slow job accepted ({r})"))?;
    let r = request(&addr, &wire::encode_submit(&slow2))?;
    expect(r == "ok id=3", &format!("queued job accepted ({r})"))?;

    // -- Phase 2: SIGKILL mid-run ---------------------------------
    let mut mid_run = false;
    for _ in 0..2000 {
        let r = request(&addr, "status id=2")?;
        let state_now = field_of(&r, "state").unwrap_or_default();
        let steps: usize = field_of(&r, "steps")
            .and_then(|s| s.split('/').next().map(str::to_string))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        if state_now == "running" && steps > 5 {
            mid_run = true;
            break;
        }
        if state_now == "done" {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    expect(mid_run, "caught the slow job mid-run")?;
    a_child.kill().map_err(|e| format!("kill server: {e}"))?;
    let _ = a_child.wait();
    println!("restart-drill: server killed (SIGKILL) mid-job");

    // -- Phase 3: restart over the same state dir -----------------
    let b = spawn_server(&state, 1)?;
    let addr = b.addr.clone();
    let mut b_child = b.child;
    let recovery = b.recovery.ok_or("no recovery summary line printed")?;
    expect(
        field_of(&recovery, "requeued").as_deref() == Some("2"),
        &format!("both interrupted jobs requeued ({recovery})"),
    )?;
    expect(
        field_of(&recovery, "done").as_deref() == Some("1"),
        &format!("completed job restored ({recovery})"),
    )?;

    // Interrupted jobs finish after the restart — nothing was lost.
    // (`wait` goes through the deadline-free path: it blocks by design.)
    for id in [2u64, 3] {
        let r = RemoteClient::connect(addr.clone()).wait(id)?;
        expect(
            field_of(&r, "state").as_deref() == Some("done"),
            &format!("requeued job {id} completed after restart ({r})"),
        )?;
    }
    let hashes_slow1 = field_of(&request(&addr, "result id=2")?, "hashes")
        .ok_or("no hashes for requeued job 2")?;
    let hashes_slow2 = field_of(&request(&addr, "result id=3")?, "hashes")
        .ok_or("no hashes for requeued job 3")?;

    // The pre-crash result survived: resubmitting the fast deck is a
    // zero-step cache hit with the identical report.
    let r = request(&addr, "stats")?;
    let steps_before: u64 = field_of(&r, "total_steps")
        .and_then(|s| s.parse().ok())
        .ok_or(format!("no total_steps in '{r}'"))?;
    let r = request(&addr, &wire::encode_submit(&fast))?;
    let id4 = field_of(&r, "id").ok_or(format!("resubmit failed: {r}"))?;
    let r = request(&addr, &format!("wait id={id4}"))?;
    expect(
        field_of(&r, "cached").as_deref() == Some("true"),
        &format!("pre-crash result survived as a cache hit ({r})"),
    )?;
    let r = request(&addr, "stats")?;
    let steps_after: u64 = field_of(&r, "total_steps")
        .and_then(|s| s.parse().ok())
        .ok_or(format!("no total_steps in '{r}'"))?;
    expect(
        steps_after == steps_before,
        "cache hit after restart executed zero steps",
    )?;
    let hashes_fast_again = field_of(&request(&addr, &format!("result id={id4}"))?, "hashes")
        .ok_or("no hashes for the resubmitted fast job")?;
    expect(
        hashes_fast_again == hashes_fast,
        "recovered cache serves the bit-identical report",
    )?;

    // -- Phase 4: drain exits 0 -----------------------------------
    let r = RemoteClient::connect(addr.clone()).drain()?;
    expect(r == "ok drained", &format!("drain acknowledged ({r})"))?;
    let status = b_child.wait().map_err(|e| e.to_string())?;
    expect(status.success(), "drained server exited 0")?;

    // -- Phase 5: bit-exactness vs a never-crashed server ---------
    let c = spawn_server(&baseline, 1)?;
    let addr = c.addr.clone();
    let mut c_child = c.child;
    let r = request(&addr, &wire::encode_submit(&slow1))?;
    expect(r == "ok id=1", &format!("baseline slow job accepted ({r})"))?;
    let r = request(&addr, &wire::encode_submit(&slow2))?;
    expect(r == "ok id=2", &format!("baseline queued job accepted ({r})"))?;
    RemoteClient::connect(addr.clone()).wait(1)?;
    RemoteClient::connect(addr.clone()).wait(2)?;
    let base1 = field_of(&request(&addr, "result id=1")?, "hashes")
        .ok_or("no baseline hashes (job 1)")?;
    let base2 = field_of(&request(&addr, "result id=2")?, "hashes")
        .ok_or("no baseline hashes (job 2)")?;
    expect(
        hashes_slow1 == base1 && hashes_slow2 == base2,
        "post-crash completions hash bit-exact vs the uninterrupted run",
    )?;
    let _ = RemoteClient::connect(addr).shutdown();
    let _ = c_child.wait();

    // -- Phase 6: --drain boots, recovers, finishes, exits 0 ------
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let status = std::process::Command::new(exe)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--devices",
            "2",
            "--state-dir",
            &state.to_string_lossy(),
            "--drain",
        ])
        .status()
        .map_err(|e| e.to_string())?;
    expect(status.success(), "--drain boot over recovered state exits 0")?;

    println!("restart-drill: all checks passed");
    Ok(())
}

// -- chaos drill (seeded failure soak) --------------------------------------

/// xorshift64 (Marsaglia): the drill's only randomness source, fully
/// determined by `--chaos-seed` — the same seed replays the exact same
/// schedule, byte for byte (what the CI reproducibility check pins).
struct ChaosRng(u64);

impl ChaosRng {
    fn new(seed: u64) -> Self {
        ChaosRng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    /// Uniform-ish draw in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ChaosKind {
    /// An undisturbed run.
    Clean,
    /// Rank 1 panics mid-step; the supervisor respawns and restores it.
    RankKill,
    /// Rank 1 drops a halo message; the peer diagnoses the timeout and
    /// the supervisor rolls back.
    HaloDrop,
}

struct ChaosJob {
    kind: ChaosKind,
    seed: u64,
    n_steps: usize,
    /// Drop a half-written connection on the server right before this
    /// submission (the wire edge must shrug it off).
    drop_before: bool,
}

/// Everything random about the drill, drawn up front so the schedule
/// can be fingerprinted (and compared across runs) before anything
/// executes.
struct ChaosSchedule {
    jobs: Vec<ChaosJob>,
    panic_seed: u64,
    fault_seed: u64,
    deadline_seed: u64,
    slow_seeds: [u64; 2],
    fingerprint: u64,
}

impl ChaosSchedule {
    fn draw(seed: u64) -> Self {
        let mut rng = ChaosRng::new(seed);
        let mut fp = ChaosRng::new(seed ^ 0xC4A5);
        let mut note = |v: u64| {
            fp.0 ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            fp.next();
        };
        let mut jobs = Vec::new();
        for _ in 0..4 {
            let kind = match rng.range(0, 3) {
                0 => ChaosKind::Clean,
                1 => ChaosKind::RankKill,
                _ => ChaosKind::HaloDrop,
            };
            let job = ChaosJob {
                kind,
                seed: rng.range(1, 1000),
                n_steps: rng.range(6, 12) as usize,
                drop_before: rng.next() & 1 == 1,
            };
            note(match kind {
                ChaosKind::Clean => 0,
                ChaosKind::RankKill => 1,
                ChaosKind::HaloDrop => 2,
            });
            note(job.seed);
            note(job.n_steps as u64);
            note(u64::from(job.drop_before));
            jobs.push(job);
        }
        let panic_seed = rng.range(1, 1000);
        let fault_seed = rng.range(1, 1000);
        let deadline_seed = rng.range(1, 1000);
        let slow_seeds = [rng.range(1, 1000), rng.range(1, 1000)];
        note(panic_seed);
        note(fault_seed);
        note(deadline_seed);
        note(slow_seeds[0]);
        note(slow_seeds[1]);
        let fingerprint = fp.next();
        ChaosSchedule {
            jobs,
            panic_seed,
            fault_seed,
            deadline_seed,
            slow_seeds,
            fingerprint,
        }
    }
}

/// Open a connection, write a partial or garbage request, and drop it
/// without ever finishing the line — the modelled flaky client.
fn drop_connection(addr: &str, garbage: bool) {
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = if garbage {
            s.write_all(b"\x00\xff\xfe half a request that never ends")
        } else {
            s.write_all(b"submit tenant=chaos version=A ranks=1")
        };
        // Dropped here: no newline, no read.
    }
}

/// The deck for one scheduled chaos job (plus its rank count).
fn chaos_deck(job: &ChaosJob, ckpt_root: &std::path::Path, i: usize) -> (Deck, usize) {
    let mut d = tiny_deck();
    d.time.n_steps = job.n_steps;
    if job.kind == ChaosKind::Clean {
        return (d, 1);
    }
    let dir = ckpt_root.join(format!("job{i}"));
    let _ = std::fs::create_dir_all(&dir);
    d.checkpoint.interval = 2;
    d.checkpoint.dir = dir.to_string_lossy().into_owned();
    d.resilience.max_respawns = 1;
    d.resilience.heartbeat_ms = 10;
    d.resilience.miss_budget = 5;
    d.resilience.recv_deadline_ms = 500;
    d.fault.kind = match job.kind {
        ChaosKind::RankKill => mas_config::FaultKind::Panic,
        ChaosKind::HaloDrop => mas_config::FaultKind::HaloDrop,
        ChaosKind::Clean => unreachable!(),
    };
    d.fault.step = 3;
    d.fault.rank = 1;
    d.fault.count = 1;
    (d, 2)
}

/// The same physics with the disturbance removed — what the baseline
/// server runs to pin bit-exactness.
fn undisturbed(deck: &Deck) -> Deck {
    let mut d = deck.clone();
    d.fault.kind = mas_config::FaultKind::None;
    d
}

fn chaos_drill(seed: u64) -> Result<(), String> {
    let sched = ChaosSchedule::draw(seed);
    println!("chaos-drill: seed={seed} fingerprint={:016x}", sched.fingerprint);
    for (i, j) in sched.jobs.iter().enumerate() {
        println!(
            "chaos-drill: schedule[{i}] kind={:?} seed={} steps={} drop_before={}",
            j.kind, j.seed, j.n_steps, j.drop_before
        );
    }
    println!(
        "chaos-drill: schedule[panic] seed={} | schedule[device-fault] seed={} | \
         schedule[deadline] seed={} | schedule[sigkill] seeds={},{}",
        sched.panic_seed,
        sched.fault_seed,
        sched.deadline_seed,
        sched.slow_seeds[0],
        sched.slow_seeds[1]
    );

    let state = std::env::temp_dir().join(format!("mas_serve_chaos_{seed}"));
    let baseline_state = std::env::temp_dir().join(format!("mas_serve_chaos_base_{seed}"));
    let ckpt_root = std::env::temp_dir().join(format!("mas_serve_chaos_ckpt_{seed}"));
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&baseline_state);
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let a = spawn_server(&state, 2)?;
    let addr = a.addr.clone();
    let mut a_child = a.child;
    // Every id the server ever acknowledged; the no-lost-jobs invariant
    // checks each one resolves to a terminal state at the end.
    let mut acked: Vec<u64> = Vec::new();
    let submit = |spec: &mas_serve::JobSpec, acked: &mut Vec<u64>| -> Result<u64, String> {
        let r = request(&addr, &wire::encode_submit(spec))?;
        let id: u64 = field_of(&r, "id")
            .and_then(|s| s.parse().ok())
            .ok_or(format!("submit rejected: {r}"))?;
        acked.push(id);
        Ok(id)
    };

    // -- Scene A: disturbed physics under connection chaos ------------
    let mut physics: Vec<(u64, Deck, usize, u64)> = Vec::new(); // (id, clean deck, ranks, seed)
    for (i, job) in sched.jobs.iter().enumerate() {
        if job.drop_before {
            drop_connection(&addr, i % 2 == 0);
        }
        let (deck, ranks) = chaos_deck(job, &ckpt_root, i);
        let spec = mas_serve::JobSpec::new(deck.clone())
            .tenant("chaos")
            .ranks(ranks)
            .seed(job.seed)
            .max_attempts(3);
        let id = submit(&spec, &mut acked)?;
        physics.push((id, undisturbed(&deck), ranks, job.seed));
    }
    let mut result_hashes: Vec<(u64, String)> = Vec::new();
    for &(id, ..) in &physics {
        let r = RemoteClient::connect(addr.clone()).wait(id)?;
        expect(
            field_of(&r, "state").as_deref() == Some("done"),
            &format!("chaos job {id} completed ({r})"),
        )?;
        let h = field_of(&request(&addr, &format!("result id={id}"))?, "hashes")
            .ok_or(format!("no hashes for job {id}"))?;
        result_hashes.push((id, h));
    }

    // -- Scene B: a crash-looping deck is quarantined ------------------
    let mut panic_deck = tiny_deck();
    panic_deck.problem = "chaos-panic".into();
    let panic_spec = mas_serve::JobSpec::new(panic_deck.clone())
        .tenant("chaos")
        .seed(sched.panic_seed)
        .max_attempts(2);
    let pid = submit(&panic_spec, &mut acked)?;
    let r = RemoteClient::connect(addr.clone()).wait(pid)?;
    expect(
        field_of(&r, "state").as_deref() == Some("quarantined"),
        &format!("panicking deck quarantined after its attempt budget ({r})"),
    )?;
    let r = request(&addr, &wire::encode_submit(&panic_spec))?;
    expect(
        r.starts_with("err ") && r.contains("quarantined"),
        &format!("quarantined resubmission refused ({r})"),
    )?;
    let r = request(&addr, "quarantine list")?;
    expect(
        field_of(&r, "n").as_deref() == Some("1"),
        &format!("quarantine lists one key ({r})"),
    )?;
    // The server is still serving everyone else.
    let r = request(&addr, "stats")?;
    expect(
        field_of(&r, "worker_panics").and_then(|s| s.parse::<u64>().ok()) >= Some(2),
        &format!("both panicking attempts were contained ({r})"),
    )?;

    // -- Scene B2: a deadline fails a job cooperatively ----------------
    let deadline_spec = mas_serve::JobSpec::new(slow_deck(3000))
        .tenant("chaos")
        .seed(sched.deadline_seed)
        .deadline_ms(250);
    let did = submit(&deadline_spec, &mut acked)?;
    let r = RemoteClient::connect(addr.clone()).wait(did)?;
    expect(
        field_of(&r, "state").as_deref() == Some("failed")
            && field_of(&r, "error").is_some_and(|e| e.contains("deadline")),
        &format!("over-deadline job failed with a deadline error ({r})"),
    )?;

    // -- Scene C: a sick device is pulled, probed, reinstated ----------
    let r = request(&addr, "inject device=0 count=3")?;
    expect(r.starts_with("ok "), &format!("fault injection accepted ({r})"))?;
    let fault_spec = mas_serve::JobSpec::new(tiny_deck())
        .tenant("chaos")
        .seed(sched.fault_seed)
        .max_attempts(6);
    let fid = submit(&fault_spec, &mut acked)?;
    let r = RemoteClient::connect(addr.clone()).wait(fid)?;
    expect(
        field_of(&r, "state").as_deref() == Some("done"),
        &format!("job survived the sick device via retries ({r})"),
    )?;
    let fh = field_of(&request(&addr, &format!("result id={fid}"))?, "hashes")
        .ok_or("no hashes for the device-fault job")?;
    result_hashes.push((fid, fh));
    physics.push((fid, tiny_deck(), 1, sched.fault_seed));
    // The canary must reinstate device 0 once its faults are exhausted.
    let mut reinstated = false;
    for _ in 0..400 {
        let r = request(&addr, "stats")?;
        let suspect: usize = field_of(&r, "suspect").and_then(|s| s.parse().ok()).unwrap_or(9);
        let reins: u64 = field_of(&r, "reinstated").and_then(|s| s.parse().ok()).unwrap_or(0);
        if suspect == 0 && reins >= 1 {
            reinstated = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    expect(reinstated, "suspect device probed by canary and reinstated")?;

    // -- Scene D: SIGKILL mid-run, recover, verify ---------------------
    let slow1 = mas_serve::JobSpec::new(slow_deck(1500))
        .tenant("chaos")
        .seed(sched.slow_seeds[0]);
    let slow2 = mas_serve::JobSpec::new(slow_deck(1500))
        .tenant("chaos")
        .seed(sched.slow_seeds[1]);
    let s1 = submit(&slow1, &mut acked)?;
    let s2 = submit(&slow2, &mut acked)?;
    let mut mid_run = false;
    for _ in 0..2000 {
        let r = request(&addr, &format!("status id={s1}"))?;
        let state_now = field_of(&r, "state").unwrap_or_default();
        let steps: usize = field_of(&r, "steps")
            .and_then(|s| s.split('/').next().map(str::to_string))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        if state_now == "running" && steps > 5 {
            mid_run = true;
            break;
        }
        if state_now == "done" {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    expect(mid_run, "caught a slow job mid-run")?;
    a_child.kill().map_err(|e| format!("kill server: {e}"))?;
    let _ = a_child.wait();
    println!("chaos-drill: server killed (SIGKILL) mid-job");

    let b = spawn_server(&state, 2)?;
    let addr = b.addr.clone();
    let mut b_child = b.child;
    let recovery = b.recovery.ok_or("no recovery summary line printed")?;
    // The quarantine survived the kill (journaled), and the pool-ledger
    // invariant held (the recovering server asserts it or dies).
    expect(
        field_of(&recovery, "quarantine_keys").as_deref() == Some("1"),
        &format!("quarantine survived SIGKILL ({recovery})"),
    )?;
    expect(
        field_of(&recovery, "requeued").as_deref() == Some("2"),
        &format!("both interrupted jobs requeued ({recovery})"),
    )?;
    for id in [s1, s2] {
        let r = RemoteClient::connect(addr.clone()).wait(id)?;
        expect(
            field_of(&r, "state").as_deref() == Some("done"),
            &format!("requeued job {id} completed after restart ({r})"),
        )?;
    }
    // Quarantine still enforced post-restart, then cleared.
    let r = request(&addr, &wire::encode_submit(&panic_spec))?;
    expect(
        r.starts_with("err ") && r.contains("quarantined"),
        &format!("quarantine enforced after recovery ({r})"),
    )?;
    let r = request(&addr, "quarantine clear")?;
    expect(
        field_of(&r, "cleared").as_deref() == Some("1"),
        &format!("quarantine cleared ({r})"),
    )?;
    let r = request(&addr, "quarantine list")?;
    expect(
        field_of(&r, "n").as_deref() == Some("0"),
        &format!("quarantine empty after clear ({r})"),
    )?;

    // No acknowledged job was lost: every id the first incarnation
    // acknowledged resolves to a state here, and none is stuck.
    for &id in &acked {
        let r = request(&addr, &format!("status id={id}"))?;
        let state_now = field_of(&r, "state").unwrap_or_default();
        expect(
            ["done", "failed", "cancelled", "quarantined"].contains(&state_now.as_str()),
            &format!("acknowledged job {id} is terminal after recovery ({r})"),
        )?;
    }
    // Ledger balanced, nothing leaked.
    let r = request(&addr, "stats")?;
    expect(
        field_of(&r, "busy").as_deref() == Some("0")
            && field_of(&r, "running").as_deref() == Some("0")
            && field_of(&r, "queued").as_deref() == Some("0"),
        &format!("pool idle and ledger balanced after the soak ({r})"),
    )?;
    let r = RemoteClient::connect(addr.clone()).drain()?;
    expect(r == "ok drained", &format!("drain acknowledged ({r})"))?;
    let status = b_child.wait().map_err(|e| e.to_string())?;
    expect(status.success(), "drained server exited 0")?;

    // -- Scene E: bit-exactness vs an undisturbed baseline -------------
    let c = spawn_server(&baseline_state, 2)?;
    let addr = c.addr.clone();
    let mut c_child = c.child;
    for (chaos_id, clean_deck, ranks, job_seed) in &physics {
        let spec = mas_serve::JobSpec::new(clean_deck.clone())
            .tenant("baseline")
            .ranks(*ranks)
            .seed(*job_seed);
        let r = request(&addr, &wire::encode_submit(&spec))?;
        let bid = field_of(&r, "id").ok_or(format!("baseline submit rejected: {r}"))?;
        RemoteClient::connect(addr.clone()).wait(bid.parse().map_err(|e| format!("{e}"))?)?;
        let bh = field_of(&request(&addr, &format!("result id={bid}"))?, "hashes")
            .ok_or(format!("no baseline hashes for job {bid}"))?;
        let ch = &result_hashes
            .iter()
            .find(|(id, _)| id == chaos_id)
            .ok_or(format!("missing chaos hashes for job {chaos_id}"))?
            .1;
        expect(
            ch == &bh,
            &format!("chaos job {chaos_id} hashes bit-exact vs undisturbed baseline"),
        )?;
    }
    let _ = RemoteClient::connect(addr).shutdown();
    let _ = c_child.wait();

    println!("chaos-drill: all checks passed (seed={seed} fingerprint={:016x})", sched.fingerprint);
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mas_serve: {e}\n");
            usage();
        }
    };
    if opts.drill {
        return match drill() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("drill: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.restart_drill {
        return match restart_drill() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("restart-drill: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.chaos_drill {
        return match chaos_drill(opts.chaos_seed) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("chaos-drill: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let server = match server_from(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mas_serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.drain {
        // Headless wind-down: finish everything recovered/queued,
        // journal the terminal states, exit 0. No listener.
        server.drain();
        server.join();
        let s = server.stats();
        println!(
            "mas_serve: drained | done={} failed={} cancelled={}",
            s.done, s.failed, s.cancelled
        );
        return ExitCode::SUCCESS;
    }
    let listener = match TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mas_serve: cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| opts.listen.clone());
    println!(
        "mas_serve: listening on {bound} | {} device(s), {} worker(s), queue {}, quota {}{}",
        opts.devices,
        opts.workers.unwrap_or(opts.devices),
        opts.queue,
        opts.quota,
        match &opts.state_dir {
            Some(d) => format!(", journal {d}/journal.log"),
            None => ", in-memory (no --state-dir)".into(),
        }
    );
    let deadline = match opts.wire_deadline_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    serve(listener, server, deadline);
    ExitCode::SUCCESS
}
