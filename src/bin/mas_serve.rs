//! `mas_serve` — the simulation-as-a-service daemon.
//!
//! Usage:
//!
//! ```text
//! mas_serve [--listen ADDR] [--devices N] [--workers N] [--queue N] [--quota N]
//! mas_serve --drill
//! ```
//!
//! The default mode binds a TCP listener and speaks the `mas-serve` line
//! protocol (one request line, one response line — see
//! `mas_serve::wire`): `submit`, `status`, `wait`, `cancel`, `result`,
//! `stats`, `shutdown`.
//!
//! `--drill` is the self-contained smoke sequence CI runs: boot a
//! 2-device server on an ephemeral port, then over real TCP submit a
//! tiny deck and wait for it, resubmit it and require a cache hit with
//! zero additional steps executed, and run a rank-death job to require
//! the supervisor's respawn recovery works under the scheduler. Exits
//! non-zero on any violation.

use mas_config::Deck;
use mas_serve::wire::{self, Request};
use mas_serve::{JobId, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: mas_serve [--listen ADDR] [--devices N] [--workers N] [--queue N] [--quota N]\n\
         \x20      mas_serve --drill\n\
         \n\
         --listen ADDR    bind address               (default 127.0.0.1:4333)\n\
         --devices N      virtual device pool size   (default 4)\n\
         --workers N      concurrent jobs            (default = devices)\n\
         --queue N        queued-job backpressure cap (default 32)\n\
         --quota N        per-tenant live-job quota  (default 8)\n\
         --drill          run the self-test smoke sequence and exit"
    );
    std::process::exit(2);
}

struct Opts {
    listen: String,
    devices: usize,
    workers: Option<usize>,
    queue: usize,
    quota: usize,
    drill: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        listen: "127.0.0.1:4333".into(),
        devices: 4,
        workers: None,
        queue: 32,
        quota: 8,
        drill: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut val = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--listen" => o.listen = val("--listen")?,
            "--devices" => o.devices = val("--devices")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => {
                o.workers = Some(val("--workers")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--queue" => o.queue = val("--queue")?.parse().map_err(|e| format!("{e}"))?,
            "--quota" => o.quota = val("--quota")?.parse().map_err(|e| format!("{e}"))?,
            "--drill" => o.drill = true,
            "--help" | "-h" => usage(),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(o)
}

fn server_from(o: &Opts) -> Arc<Server> {
    let mut cfg = ServerConfig::new(gpusim::DeviceSpec::a100_40gb(), o.devices);
    cfg.n_workers = o.workers.unwrap_or(o.devices);
    cfg.max_queue = o.queue;
    cfg.tenant_quota = o.quota;
    Server::start(cfg)
}

/// One response line for one request line.
fn respond(server: &Arc<Server>, req: Request) -> String {
    match req {
        Request::Submit(spec) => match server.submit(*spec) {
            Ok(id) => format!("ok id={}", id.0),
            Err(e) => format!("err {}", wire::escape(&e.to_string())),
        },
        Request::Status(id) => match server.status(JobId(id)) {
            Some(s) => wire::encode_status(&s),
            None => format!("err unknown job id {id}"),
        },
        Request::Wait(id) => match server.wait(JobId(id)) {
            Some(s) => wire::encode_status(&s),
            None => format!("err unknown job id {id}"),
        },
        Request::Cancel(id) => match server.cancel(JobId(id)) {
            Ok(()) => format!("ok id={id}"),
            Err(e) => format!("err {}", wire::escape(&e)),
        },
        Request::Result(id) => match server.result(JobId(id)) {
            Some(Ok(report)) => {
                let hashes: Vec<String> = report
                    .ranks
                    .iter()
                    .map(|r| format!("{:016x}", r.state_hash))
                    .collect();
                let steps: usize = report.ranks.first().map_or(0, |r| r.steps);
                format!(
                    "ok id={id} ranks={} steps={steps} hashes={}",
                    report.ranks.len(),
                    hashes.join(",")
                )
            }
            Some(Err(e)) => format!("err {}", wire::escape(&e)),
            None => format!("err job {id} is not finished (use 'wait id={id}')"),
        },
        Request::Stats => {
            let s = server.stats();
            format!(
                "ok devices={} free={} busy={} queued={} running={} done={} failed={} \
                 cancelled={} cache_hits={} cache_misses={} total_steps={}",
                s.pool.total,
                s.pool.free,
                s.pool.busy,
                s.queued,
                s.running,
                s.done,
                s.failed,
                s.cancelled,
                s.cache_hits,
                s.cache_misses,
                s.total_steps
            )
        }
        Request::Shutdown => "ok shutting-down".into(),
    }
}

/// Accept loop: one thread per connection, one response line per
/// request line. Returns when a `shutdown` request arrives.
fn serve(listener: TcpListener, server: Arc<Server>) {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr().expect("listener address");
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = server.clone();
        let stop = stop.clone();
        conns.push(std::thread::spawn(move || {
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut line = String::new();
            let mut out = stream;
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {}
                }
                if line.trim().is_empty() {
                    continue;
                }
                let (reply, is_shutdown) = match wire::parse_request(&line) {
                    Ok(req) => {
                        let is_shutdown = matches!(req, Request::Shutdown);
                        (respond(&server, req), is_shutdown)
                    }
                    Err(e) => (format!("err {}", wire::escape(&e)), false),
                };
                if writeln!(out, "{reply}").is_err() {
                    return;
                }
                let _ = out.flush();
                if is_shutdown {
                    server.shutdown();
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop with a throwaway connection.
                    let _ = TcpStream::connect(addr);
                    return;
                }
            }
        }));
    }
    for c in conns {
        let _ = c.join();
    }
    server.join();
}

// -- drill mode -------------------------------------------------------------

/// Send one request line on a fresh connection, return the response line.
fn request(addr: &str, line: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut out = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(out, "{line}").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    Ok(reply.trim_end().to_string())
}

fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        println!("drill: PASS {what}");
        Ok(())
    } else {
        Err(format!("FAIL {what}"))
    }
}

fn field_of(reply: &str, key: &str) -> Option<String> {
    reply
        .split_whitespace()
        .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
        .map(|s| s.to_string())
}

fn tiny_deck() -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = 4;
    d.output.hist_interval = 0;
    d
}

fn drill() -> Result<(), String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    let server = server_from(&Opts {
        listen: addr.clone(),
        devices: 2,
        workers: Some(2),
        queue: 8,
        quota: 8,
        drill: true,
    });
    let srv = std::thread::spawn(move || serve(listener, server));
    println!("drill: serving on {addr}");

    // 1. A tiny deck runs to completion over the wire.
    let spec = mas_serve::JobSpec::new(tiny_deck()).tenant("drill").seed(7);
    let r = request(&addr, &wire::encode_submit(&spec))?;
    expect(r == "ok id=1", &format!("submit accepted ({r})"))?;
    let r = request(&addr, "wait id=1")?;
    expect(
        field_of(&r, "state").as_deref() == Some("done"),
        &format!("job 1 done ({r})"),
    )?;
    let r = request(&addr, "stats")?;
    let steps_after_first: u64 = field_of(&r, "total_steps")
        .and_then(|s| s.parse().ok())
        .ok_or(format!("no total_steps in '{r}'"))?;
    expect(steps_after_first > 0, "first run executed steps")?;
    let hashes1 = field_of(&request(&addr, "result id=1")?, "hashes");

    // 2. Resubmission is a cache hit: done instantly, zero new steps,
    //    identical result.
    let r = request(&addr, &wire::encode_submit(&spec))?;
    expect(r == "ok id=2", &format!("resubmit accepted ({r})"))?;
    let r = request(&addr, "wait id=2")?;
    expect(
        field_of(&r, "cached").as_deref() == Some("true"),
        &format!("resubmission served from cache ({r})"),
    )?;
    let r = request(&addr, "stats")?;
    expect(
        field_of(&r, "cache_hits").as_deref() == Some("1"),
        &format!("cache hit counted ({r})"),
    )?;
    let steps_after_second: u64 = field_of(&r, "total_steps")
        .and_then(|s| s.parse().ok())
        .ok_or(format!("no total_steps in '{r}'"))?;
    expect(
        steps_after_second == steps_after_first,
        "cache hit executed zero steps",
    )?;
    let hashes2 = field_of(&request(&addr, "result id=2")?, "hashes");
    expect(
        hashes1.is_some() && hashes1 == hashes2,
        "cached result is bit-identical",
    )?;

    // 3. Kill a rank mid-job: the supervisor's respawn recovery must
    //    work underneath the scheduler.
    let dir = std::env::temp_dir().join("mas_serve_drill");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let mut deck = tiny_deck();
    deck.checkpoint.interval = 2;
    deck.checkpoint.dir = dir.to_string_lossy().into_owned();
    deck.resilience.max_respawns = 1;
    deck.resilience.heartbeat_ms = 10;
    deck.resilience.miss_budget = 5;
    deck.resilience.recv_deadline_ms = 500;
    deck.fault.kind = mas_config::FaultKind::Panic;
    // Step 3: past the step-2 checkpoint commit, so the respawned rank
    // restores from disk rather than replaying from scratch.
    deck.fault.step = 3;
    deck.fault.rank = 1;
    deck.fault.count = 1;
    let spec = mas_serve::JobSpec::new(deck).tenant("drill").ranks(2).seed(7);
    let r = request(&addr, &wire::encode_submit(&spec))?;
    expect(r == "ok id=3", &format!("rank-death job accepted ({r})"))?;
    let r = request(&addr, "wait id=3")?;
    expect(
        field_of(&r, "state").as_deref() == Some("done"),
        &format!("rank-death job recovered to completion ({r})"),
    )?;
    let recoveries: usize = field_of(&r, "recovery")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    expect(recoveries > 0, "recovery events were streamed")?;

    // 4. Clean shutdown over the wire.
    let r = request(&addr, "shutdown")?;
    expect(r == "ok shutting-down", &format!("shutdown accepted ({r})"))?;
    srv.join().map_err(|_| "server thread panicked".to_string())?;
    println!("drill: all checks passed");
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mas_serve: {e}\n");
            usage();
        }
    };
    if opts.drill {
        return match drill() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("drill: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let listener = match TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mas_serve: cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    let server = server_from(&opts);
    println!(
        "mas_serve: listening on {} | {} device(s), {} worker(s), queue {}, quota {}",
        opts.listen,
        opts.devices,
        opts.workers.unwrap_or(opts.devices),
        opts.queue,
        opts.quota
    );
    serve(listener, server);
    ExitCode::SUCCESS
}
