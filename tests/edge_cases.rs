//! Integration: edge cases and failure behaviour across the workspace —
//! the inputs a downstream user will eventually feed the library.

use mas::prelude::*;

#[test]
fn minimal_grid_runs() {
    // The smallest admissible problem (4³ cells) must run all physics.
    let mut deck = Deck::preset_quickstart();
    deck.grid = mas::config::GridCfg {
        nr: 4,
        nt: 4,
        np: 4,
        rmax: 3.0,
    };
    deck.time.n_steps = 3;
    deck.output.hist_interval = 3;
    let r = mas::mhd::run_single_rank(&deck, CodeVersion::D2xu);
    assert_eq!(r.steps, 3);
    assert!(r.hist.last().unwrap().diag.mass > 0.0);
}

#[test]
fn zero_dissipation_deck_runs() {
    // All parabolic terms off: pure ideal MHD path (no PCG, no STS).
    let mut deck = Deck::preset_quickstart();
    deck.physics.visc = 0.0;
    deck.physics.eta = 0.0;
    deck.physics.kappa0 = 0.0;
    deck.physics.radiation = false;
    deck.physics.heating = false;
    deck.output.hist_interval = 1;
    let r = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    for h in &r.hist {
        assert_eq!(h.pcg_iters, 0, "no viscosity => no PCG work");
        assert_eq!(h.sts_ops, 0, "no conduction => no STS work");
        assert!(h.diag.divb_max < 1e-11);
    }
}

#[test]
fn invalid_decks_are_rejected() {
    for (mutate, needle) in [
        (
            Box::new(|d: &mut Deck| d.grid.nr = 2) as Box<dyn Fn(&mut Deck)>,
            "at least 4 cells",
        ),
        (Box::new(|d: &mut Deck| d.grid.rmax = 0.5), "exceed the solar"),
        (Box::new(|d: &mut Deck| d.physics.gamma = 5.0), "gamma"),
        (Box::new(|d: &mut Deck| d.time.cfl = 2.0), "cfl"),
        (Box::new(|d: &mut Deck| d.physics.visc = -1.0), "non-negative"),
        (Box::new(|d: &mut Deck| d.solver.pcg_tol = 2.0), "pcg_tol"),
    ] {
        let mut d = Deck::preset_quickstart();
        mutate(&mut d);
        let errs = d.validate();
        assert!(
            errs.iter().any(|e| e.contains(needle)),
            "expected '{needle}' in {errs:?}"
        );
    }
}

#[test]
fn deck_text_with_unknown_section_key_fails_loudly() {
    assert!(Deck::parse("&grid\n nr = 8\n bogus_key = 1\n/\n").is_err());
    assert!(Deck::parse("&bogus_section\n x = 1\n/\n").is_err());
    assert!(Deck::parse("&solver\n visc_solver = 'nonsense'\n/\n").is_err());
}

#[test]
fn uneven_phi_partition_still_correct() {
    // 24 planes over 5 ranks: 5,5,5,5,4 — physics must still match the
    // single-rank run.
    let mut deck = Deck::preset_quickstart();
    deck.grid.np = 24;
    deck.time.n_steps = 3;
    deck.output.hist_interval = 3;
    use mas::gpusim::DeviceSpec;
    let one = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    let five = mas::mhd::run_multi_rank(&deck, CodeVersion::A, DeviceSpec::a100_40gb(), 5, 1, false);
    let d1 = one.hist.last().unwrap().diag;
    let d5 = five.hist().last().unwrap().diag;
    assert!((d1.mass - d5.mass).abs() / d1.mass < 1e-10);
    assert!((d1.etherm - d5.etherm).abs() / d1.etherm < 1e-10);
}

#[test]
fn profiler_spans_are_ordered_and_nonoverlapping_per_rank() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 2;
    deck.output.hist_interval = 0;
    use mas::gpusim::DeviceSpec;
    let rep = mas::mhd::run_multi_rank(&deck, CodeVersion::A, DeviceSpec::a100_40gb(), 1, 1, true);
    let spans = &rep.ranks[0].spans;
    assert!(spans.len() > 100, "expected a rich span log");
    for w in spans.windows(2) {
        assert!(w[0].t1 <= w[1].t0 + 1e-9, "spans overlap: {:?} then {:?}", w[0], w[1]);
        assert!(w[0].t0 <= w[0].t1);
    }
}

#[test]
fn band_grid_without_poles_runs() {
    // θ bands (no polar axis) are a supported configuration: the polar
    // regularization must no-op and everything else behave.
    use mas::grid::{Mesh1d, SphericalGrid, NGHOST};
    let r = Mesh1d::uniform(8, 1.0, 4.0, NGHOST, false);
    let t = Mesh1d::uniform(8, 0.7, std::f64::consts::PI - 0.7, NGHOST, false);
    let p = Mesh1d::uniform(8, 0.0, std::f64::consts::TAU, NGHOST, true);
    let g = SphericalGrid::new(r, t, p);
    assert!(!g.has_poles);
    // The full Simulation uses the coronal preset, so exercise the band
    // grid through the operators directly.
    use mas::mhd::ops::deriv::CtGeom;
    let ct = CtGeom::new(&g);
    // No zero-area θ faces in a band.
    for j in NGHOST..NGHOST + g.nt + 1 {
        assert!(ct.area_t(NGHOST, j, NGHOST) > 0.0);
    }
}

#[test]
fn model_scale_one_is_identity() {
    // paper_cells = 0 (no extrapolation) and paper_cells = n_cells must
    // give identical timings.
    let mut d0 = Deck::preset_quickstart();
    d0.paper_cells = 0;
    let mut d1 = d0.clone();
    d1.paper_cells = d1.n_cells();
    let r0 = mas::mhd::run_single_rank(&d0, CodeVersion::A);
    let r1 = mas::mhd::run_single_rank(&d1, CodeVersion::A);
    assert_eq!(r0.wall_us, r1.wall_us);
}
