//! Integration: multi-rank decomposition invariance and the scaling
//! behaviours behind the paper's Figs. 2 and 3.

use mas::gpusim::DeviceSpec;
use mas::prelude::*;

fn deck() -> Deck {
    let mut d = Deck::preset_quickstart();
    d.grid.np = 24; // divisible by 1, 2, 3, 4
    d.time.n_steps = 4;
    d.output.hist_interval = 4;
    d
}

#[test]
fn physics_invariant_under_rank_count() {
    let d = deck();
    let one = mas::mhd::run_single_rank(&d, CodeVersion::A);
    let ref_diag = one.hist.last().unwrap().diag;
    for n in [2usize, 3, 4] {
        let multi =
            mas::mhd::run_multi_rank(&d, CodeVersion::A, DeviceSpec::a100_40gb(), n, 1, false);
        let diag = multi.hist().last().unwrap().diag;
        let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-300)).abs();
        assert!(rel(diag.mass, ref_diag.mass) < 1e-10, "{n} ranks mass");
        assert!(rel(diag.etherm, ref_diag.etherm) < 1e-10, "{n} ranks etherm");
        assert!(rel(diag.ekin, ref_diag.ekin) < 1e-6, "{n} ranks ekin");
    }
}

#[test]
fn more_ranks_less_wall_time() {
    let mut d = deck();
    d.paper_cells = 36_000_000;
    let spec = DeviceSpec::a100_40gb();
    let w1 = mas::mhd::run_multi_rank(&d, CodeVersion::A, spec.clone(), 1, 1, false).wall_us();
    let w4 = mas::mhd::run_multi_rank(&d, CodeVersion::A, spec.clone(), 4, 1, false).wall_us();
    assert!(w4 < 0.4 * w1, "4 ranks must be at least 2.5x faster: {w1} vs {w4}");
}

#[test]
fn um_mpi_time_dominates_at_scale() {
    // The paper's Fig. 3 mechanism: at several GPUs, the unified-memory
    // version spends about half its wall time in MPI, the manual version
    // a small fraction.
    let mut d = deck();
    d.paper_cells = 36_000_000;
    let spec = DeviceSpec::a100_40gb();
    let manual = mas::mhd::run_multi_rank(&d, CodeVersion::A, spec.clone(), 4, 1, false);
    let um = mas::mhd::run_multi_rank(&d, CodeVersion::Adu, spec.clone(), 4, 1, false);
    let frac = |r: &mas::mhd::MultiRankReport| r.mean_mpi_us() / r.wall_us();
    assert!(frac(&manual) < 0.25, "manual MPI fraction {}", frac(&manual));
    assert!(frac(&um) > 0.35, "UM MPI fraction {}", frac(&um));
    assert!(
        um.mean_mpi_us() > 5.0 * manual.mean_mpi_us(),
        "UM must inflate MPI time several-fold"
    );
}

#[test]
fn cpu_runs_identical_for_a_and_ad() {
    // Table III: do concurrent compiles to the same loops on CPU.
    let d = deck();
    let spec = DeviceSpec::epyc_7742_node();
    let a = mas::mhd::run_multi_rank(&d, CodeVersion::A, spec.clone(), 2, 1, false);
    let ad = mas::mhd::run_multi_rank(&d, CodeVersion::Ad, spec.clone(), 2, 1, false);
    let rel = (a.wall_us() - ad.wall_us()).abs() / a.wall_us();
    assert!(rel < 0.01, "CPU A vs AD differ by {rel}");
}

#[test]
fn seeded_runs_reproduce_and_jitter() {
    let d = deck();
    let spec = DeviceSpec::a100_40gb();
    let w_a = mas::mhd::run_multi_rank(&d, CodeVersion::Ad, spec.clone(), 2, 7, false).wall_us();
    let w_b = mas::mhd::run_multi_rank(&d, CodeVersion::Ad, spec.clone(), 2, 7, false).wall_us();
    let w_c = mas::mhd::run_multi_rank(&d, CodeVersion::Ad, spec.clone(), 2, 8, false).wall_us();
    assert_eq!(w_a, w_b, "same seed = identical virtual time");
    assert_ne!(w_a, w_c, "different seed = jittered virtual time");
    // The jitter is small (the paper's min/max error bars are tight).
    assert!((w_a - w_c).abs() / w_a < 0.02);
}

#[test]
fn ranks_must_divide_grid_reasonably() {
    // More ranks than φ planes must be rejected loudly.
    let result = std::panic::catch_unwind(|| {
        mas::grid::SphericalGrid::phi_partition(4, 8, 0);
    });
    assert!(result.is_err());
}
