//! Integration: the optional solver paths — PCG vs STS vs explicit
//! viscosity (the ref.-\[25\] trade) and isotropic vs field-aligned
//! conduction — produce consistent physics on the full solver.

use mas::config::ViscSolver;
use mas::prelude::*;

fn base_deck() -> Deck {
    let mut d = Deck::preset_quickstart();
    d.time.n_steps = 8;
    d.output.hist_interval = 8;
    d
}

#[test]
fn viscosity_solvers_agree_on_physics() {
    let run = |vs: ViscSolver| {
        let mut d = base_deck();
        d.solver.visc_solver = vs;
        mas::mhd::run_single_rank(&d, CodeVersion::A)
            .hist
            .last()
            .unwrap()
            .diag
    };
    let pcg = run(ViscSolver::Pcg);
    let sts = run(ViscSolver::Sts);
    let exp = run(ViscSolver::Explicit);
    let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-300)).abs();
    // Different discretizations of the same mildly-stiff operator: tight
    // but not bitwise agreement.
    for (label, d) in [("sts", sts), ("explicit", exp)] {
        assert!(rel(d.mass, pcg.mass) < 1e-10, "{label} mass");
        assert!(rel(d.etherm, pcg.etherm) < 1e-8, "{label} etherm");
        assert!(
            rel(d.ekin, pcg.ekin) < 1e-2,
            "{label} ekin {} vs pcg {}",
            d.ekin,
            pcg.ekin
        );
        assert!(d.divb_max < 1e-11, "{label} divB");
    }
}

#[test]
fn sts_viscosity_avoids_global_reductions() {
    // PCG issues 2+ allreduces per iteration; STS none inside the stages.
    // Compare the Collective category totals.
    let coll = |vs: ViscSolver| {
        let mut d = base_deck();
        d.solver.visc_solver = vs;
        let r = mas::mhd::run_single_rank(&d, CodeVersion::A);
        r.cat_us
            .iter()
            .find(|(n, _)| *n == "COLL")
            .map(|&(_, t)| t)
            .unwrap_or(0.0)
    };
    let pcg = coll(ViscSolver::Pcg);
    let sts = coll(ViscSolver::Sts);
    assert!(
        pcg > 1.5 * sts,
        "PCG must spend more on collectives: {pcg} vs {sts}"
    );
}

#[test]
fn aligned_conduction_runs_and_differs_physically() {
    // Start from a temperature hot spot so conduction matters from step 1
    // (the quickstart IC is isothermal, where both operators are inert).
    let run = |aligned: bool| {
        let mut d = base_deck();
        d.solver.aligned_conduction = aligned;
        d.physics.kappa0 = 0.05;
        mas::minimpi::World::run(1, move |comm| {
            let mut sim = mas::mhd::Simulation::builder(&d)
                .version(CodeVersion::A)
                .build();
            // Hot blob off-axis.
            for di in 0..3 {
                for dj in 0..3 {
                    sim.state.temp.data.set(5 + di, 5 + dj, 6, 1.8);
                }
            }
            sim.run(&comm);
            let flux_kernels = sim
                .par
                .registry
                .sites()
                .any(|s| s.site.name == "conduct_flux_r");
            (sim.hist.last().unwrap().diag, flux_kernels)
        })
        .pop()
        .unwrap()
    };
    let (di, iso_flux) = run(false);
    let (da, ani_flux) = run(true);
    // Both stable and finite, divB unaffected.
    assert!(da.temp_min > 0.0 && da.etherm.is_finite());
    assert!(da.divb_max < 1e-11);
    // The anisotropic operator transports measurably differently
    // (suppressed cross-field flux), but conserves the same global mass.
    let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-300)).abs();
    assert!(rel(da.mass, di.mass) < 1e-8);
    assert!(
        rel(da.etherm, di.etherm) > 1e-9,
        "aligned conduction should change the thermal evolution: {} vs {}",
        da.etherm,
        di.etherm
    );
    assert!(ani_flux, "aligned run must launch the flux kernels");
    assert!(!iso_flux, "isotropic run must not");
}

#[test]
fn aligned_conduction_under_all_code_versions() {
    // The new kernels (CallsRoutine class) must behave under every policy.
    let mut d = base_deck();
    d.time.n_steps = 3;
    d.output.hist_interval = 3;
    d.solver.aligned_conduction = true;
    let reference = mas::mhd::run_single_rank(&d, CodeVersion::A)
        .hist
        .last()
        .unwrap()
        .diag;
    for v in [CodeVersion::Ad, CodeVersion::D2xu] {
        let got = mas::mhd::run_single_rank(&d, v).hist.last().unwrap().diag;
        let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-300)).abs();
        assert!(rel(got.etherm, reference.etherm) < 1e-12, "{v:?}");
    }
}

#[test]
fn checkpoint_roundtrip_through_cli_level_api() {
    // End-to-end: run, save, restore into a new sim, continue; history
    // stays sane and time advances monotonically.
    let dir = std::env::temp_dir().join("mas_solver_options_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ck.dump");
    let deck = base_deck();
    mas::minimpi::World::run(1, |comm| {
        let mut sim = mas::mhd::Simulation::builder(&deck).version(CodeVersion::A).build();
        sim.run(&comm);
        let t_mid = sim.time;
        mas::mhd::checkpoint::save(&mut sim, &path).unwrap();
        // `n_steps` is the TOTAL step count: restoring a finished run and
        // calling `run` again is a graceful no-op... (`restart_slot` wires
        // the checkpoint load through the builder.)
        let mut sim2 = mas::mhd::Simulation::builder(&deck)
            .version(CodeVersion::A)
            .restart_slot(&path)
            .build();
        assert_eq!(sim2.time, t_mid);
        assert_eq!(sim2.step, deck.time.n_steps);
        assert!(sim2.resumed);
        sim2.run(&comm);
        assert_eq!(sim2.time, t_mid, "already at the target step");
        // ...while a raised target continues the trajectory.
        let mut d2 = deck.clone();
        d2.time.n_steps = deck.time.n_steps + 2;
        let mut sim3 = mas::mhd::Simulation::builder(&d2)
            .version(CodeVersion::A)
            .restart_slot(&path)
            .build();
        sim3.run(&comm);
        assert_eq!(sim3.step, d2.time.n_steps);
        assert!(sim3.time > t_mid);
        assert!(sim3.state.find_non_finite().is_none());
    });
}
