//! Integration: the paper's §V-A validation — all six code versions
//! produce the same physical solution, while the virtual-platform
//! performance model orders them the way the paper measures.

use mas::prelude::*;

fn run_all() -> Vec<RunReport> {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 4;
    deck.output.hist_interval = 4;
    deck.paper_cells = 36_000_000;
    CodeVersion::ALL
        .iter()
        .map(|&v| mas::mhd::run_single_rank(&deck, v))
        .collect()
}

#[test]
fn all_versions_produce_identical_physics() {
    let reports = run_all();
    let r0 = reports[0].hist.last().unwrap().diag;
    for r in &reports {
        let d = r.hist.last().unwrap().diag;
        let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-300)).abs();
        assert!(rel(d.mass, r0.mass) < 1e-12, "{:?} mass", r.version);
        assert!(rel(d.etherm, r0.etherm) < 1e-12, "{:?} etherm", r.version);
        assert!(rel(d.emag, r0.emag) < 1e-12, "{:?} emag", r.version);
        assert!(
            (d.divb_max - r0.divb_max).abs() < 1e-12,
            "{:?} divb",
            r.version
        );
    }
}

/// The determinism matrix: for every code version, runs at host-engine
/// widths 1, 2 and 4 must agree *bitwise* — final-state hash, model wall
/// clock, kernel census, host-tile census, and the directive-audit census
/// are all thread-count independent. The engine only changes who executes
/// the numerics, never what is computed or charged.
#[test]
fn determinism_matrix_across_thread_counts() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 3;
    deck.output.hist_interval = 3;
    for &v in CodeVersion::ALL.iter() {
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let mut d = deck.clone();
            d.host_threads = threads;
            let r = mas::mhd::run_single_rank(&d, v);
            let audit = mas::stdpar::DirectiveAudit::new(&r.registry);
            let census = audit.census(v).total();
            let key = (
                r.state_hash,
                r.wall_us.to_bits(),
                r.kernel_launches,
                r.host_tiles,
                census,
                r.hist
                    .last()
                    .map(|h| (h.diag.mass.to_bits(), h.diag.etherm.to_bits(), h.diag.emag.to_bits())),
            );
            match &reference {
                None => reference = Some(key),
                Some(base) => assert_eq!(
                    &key, base,
                    "{v:?} at {threads} host threads diverged from the 1-thread run"
                ),
            }
        }
    }
}

/// The row-sliced kernel path is a pure execution-strategy change: for
/// every code version, runs through the scalar `loop3` bodies and the
/// row-sliced `loop3_rows` bodies must agree *bitwise* — same final-state
/// hash, model wall clock, kernel census, host-tile census, directive
/// census, and diagnostics — at every host-engine width. Row bodies
/// evaluate the same per-point expressions in the same order; only the
/// shape the optimizer sees (contiguous `&[f64]` rows) differs.
#[test]
fn determinism_matrix_across_row_paths() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 3;
    deck.output.hist_interval = 3;
    for &v in CodeVersion::ALL.iter() {
        let mut reference = None;
        for rows in [false, true] {
            for threads in [1usize, 2, 4] {
                let mut d = deck.clone();
                d.host_threads = threads;
                mas::mhd::perf::set_row_path(rows);
                let r = mas::mhd::run_single_rank(&d, v);
                mas::mhd::perf::set_row_path(true);
                let audit = mas::stdpar::DirectiveAudit::new(&r.registry);
                let census = audit.census(v).total();
                let key = (
                    r.state_hash,
                    r.wall_us.to_bits(),
                    r.kernel_launches,
                    r.host_tiles,
                    census,
                    r.hist.last().map(|h| {
                        (h.diag.mass.to_bits(), h.diag.etherm.to_bits(), h.diag.emag.to_bits())
                    }),
                );
                match &reference {
                    None => reference = Some(key),
                    Some(base) => assert_eq!(
                        &key, base,
                        "{v:?} rows={rows} t={threads} diverged from the scalar 1-thread run"
                    ),
                }
            }
        }
    }
}

/// The host engine actually tiles: a multi-thread run dispatches the same
/// tile census as a serial run (tiles are per-k-plane, not per-thread).
#[test]
fn host_tile_census_is_positive_and_width_independent() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 2;
    let mut d1 = deck.clone();
    d1.host_threads = 1;
    deck.host_threads = 4;
    let serial = mas::mhd::run_single_rank(&d1, CodeVersion::Ad);
    let wide = mas::mhd::run_single_rank(&deck, CodeVersion::Ad);
    assert!(serial.host_tiles > 0, "bulk kernels must dispatch tiles");
    assert_eq!(serial.host_tiles, wide.host_tiles);
}

#[test]
fn performance_ordering_matches_paper() {
    let reports = run_all();
    let wall = |v: CodeVersion| {
        reports
            .iter()
            .find(|r| r.version == v)
            .map(|r| r.wall_us)
            .unwrap()
    };
    // Code 1 (A) is the fastest version (fusion + async + manual memory).
    for v in CodeVersion::ALL {
        assert!(wall(CodeVersion::A) <= wall(v), "A must be fastest, {v:?}");
    }
    // The unified-memory versions are the slow group.
    for um in [CodeVersion::Adu, CodeVersion::Ad2xu, CodeVersion::D2xu] {
        for manual in [CodeVersion::A, CodeVersion::Ad, CodeVersion::D2xad] {
            assert!(
                wall(um) > 1.15 * wall(manual),
                "{um:?} must be well slower than {manual:?}"
            );
        }
    }
    // AD is within a modest factor of A (the paper's 'performance nearly
    // as good as Code 1' statement), and D2XAd close behind AD.
    assert!(wall(CodeVersion::Ad) < 1.15 * wall(CodeVersion::A));
    assert!(wall(CodeVersion::D2xad) < 1.25 * wall(CodeVersion::A));
    // The full-UM slowdown lands in the paper's 1.25x–3x window.
    let slow = wall(CodeVersion::D2xu) / wall(CodeVersion::A);
    assert!(
        (1.25..=3.2).contains(&slow),
        "D2XU/A slowdown {slow} outside the paper's reported band"
    );
}

#[test]
fn um_versions_lose_time_to_page_migration() {
    let reports = run_all();
    let mig = |v: CodeVersion| {
        reports
            .iter()
            .find(|r| r.version == v)
            .unwrap()
            .cat_us
            .iter()
            .find(|(n, _)| *n == "UM-PAGE")
            .map(|&(_, t)| t)
            .unwrap_or(0.0)
    };
    assert_eq!(mig(CodeVersion::A), 0.0);
    assert_eq!(mig(CodeVersion::Ad), 0.0);
    assert!(mig(CodeVersion::Adu) > 0.0);
    assert!(mig(CodeVersion::D2xu) > 0.0);
}

#[test]
fn directive_counts_decrease_along_the_port() {
    let reports = run_all();
    let audit = mas::stdpar::DirectiveAudit::new(&reports[0].registry);
    let totals: Vec<usize> = CodeVersion::ALL
        .iter()
        .map(|&v| audit.census(v).total())
        .collect();
    assert!(totals[0] > totals[1], "A > AD");
    assert!(totals[1] > totals[2], "AD > ADU");
    assert!(totals[2] > totals[3], "ADU > AD2XU");
    assert_eq!(totals[4], 0, "D2XU reaches zero directives");
    assert!(totals[5] > 0 && totals[5] < totals[1], "D2XAd between");
    // The A -> AD reduction is the big one (paper: 2.7x; ours is solver-
    // mix dependent but must exceed 1.8x).
    assert!(
        totals[0] as f64 / totals[1] as f64 > 1.8,
        "A->AD reduction too small: {totals:?}"
    );
}
