//! Property-based tests (proptest) of the core data structures and
//! numerical invariants across the workspace.

use mas::field::{Array3, PhiHalo};
use mas::grid::{IndexSpace3, Mesh1d, Segment, SphericalGrid, Stagger, NGHOST};
use mas::gpusim::{DeviceSpec, Traffic};
use mas::prelude::*;
use mas::stdpar::{Par, Site};
use proptest::prelude::*;

// ---------------------------------------------------------------- meshes

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stretched meshes are strictly monotone and exactly tile the domain
    /// for any admissible segment specification.
    #[test]
    fn mesh_tiles_domain(
        n in 4usize..64,
        split in 0.2f64..0.8,
        r1 in 0.3f64..6.0,
        r2 in 0.3f64..6.0,
        len1 in 0.5f64..4.0,
        len2 in 0.5f64..4.0,
    ) {
        let segs = [
            Segment::new(1.0 + len1, split, r1),
            Segment::new(1.0 + len1 + len2, 1.0 - split, r2),
        ];
        let m = Mesh1d::stretched(n, 1.0, &segs, NGHOST, false);
        for w in m.faces.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        let total: f64 = m.dc[NGHOST..NGHOST + n].iter().sum();
        prop_assert!((total - m.length()).abs() < 1e-9 * m.length());
        // df midpoints consistent: centers lie strictly between faces.
        for i in 0..n {
            prop_assert!(m.centers[NGHOST + i] > m.faces[NGHOST + i]);
            prop_assert!(m.centers[NGHOST + i] < m.faces[NGHOST + i + 1]);
        }
    }

    /// Cell volumes always sum to the analytic shell volume.
    #[test]
    fn grid_volume_exact(nr in 4usize..16, nt in 4usize..14, np in 4usize..12, rmax in 2.0f64..40.0) {
        let g = SphericalGrid::coronal(nr, nt, np, rmax);
        let exact = 4.0 / 3.0 * std::f64::consts::PI * (rmax.powi(3) - 1.0);
        let v = g.total_volume();
        prop_assert!((v - exact).abs() / exact < 1e-10, "{v} vs {exact}");
    }

    /// φ-partitions are contiguous, exhaustive and near-balanced.
    #[test]
    fn phi_partition_properties(np in 8usize..128, ranks in 1usize..8) {
        prop_assume!(np >= ranks);
        let mut next = 0;
        let mut sizes = vec![];
        for r in 0..ranks {
            let (k0, len) = SphericalGrid::phi_partition(np, ranks, r);
            prop_assert_eq!(k0, next);
            next = k0 + len;
            sizes.push(len);
        }
        prop_assert_eq!(next, np);
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1, "imbalanced: {sizes:?}");
    }
}

// ---------------------------------------------------------------- arrays

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Halo pack/unpack round-trips arbitrary plane contents.
    #[test]
    fn halo_roundtrip(n1 in 2usize..6, n2 in 2usize..6, n3 in 2usize..6, vals in prop::collection::vec(-1e6f64..1e6, 16)) {
        let mut a = Array3::zeros(n1, n2, n3);
        for (idx, v) in vals.iter().enumerate() {
            let i = idx % a.s1;
            let j = (idx / a.s1) % a.s2;
            a.set(i, j, NGHOST, *v);
            a.set(i, j, NGHOST + n3 - 1, -*v);
        }
        let mut h = PhiHalo::for_arrays(&[&a]);
        h.pack(&[&a]);
        h.recv_low.copy_from_slice(&h.send_high);
        h.recv_high.copy_from_slice(&h.send_low);
        {
            let mut arr = [&mut a];
            h.unpack(&mut arr);
        }
        for j in 0..a.s2 {
            for i in 0..a.s1 {
                prop_assert_eq!(a.get(i, j, 0), a.get(i, j, NGHOST + n3 - 1));
                prop_assert_eq!(a.get(i, j, NGHOST + n3), a.get(i, j, NGHOST));
            }
        }
    }

    /// axpy/lincomb satisfy their algebraic definitions pointwise.
    #[test]
    fn array_algebra(a in -5.0f64..5.0, b in -5.0f64..5.0, x0 in -10.0f64..10.0, y0 in -10.0f64..10.0) {
        let x = Array3::constant(3, 3, 3, x0);
        let y = Array3::constant(3, 3, 3, y0);
        let mut z = Array3::zeros(3, 3, 3);
        z.lincomb(a, &x, b, &y);
        prop_assert!((z.get(1, 1, 1) - (a * x0 + b * y0)).abs() < 1e-12);
        z.axpy(a, &y);
        prop_assert!((z.get(2, 2, 2) - (a * x0 + b * y0 + a * y0)).abs() < 1e-12);
    }
}

// ------------------------------------------------------- programming model

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar and array reductions return identical results under every
    /// code version, for arbitrary inputs (the §V-A validation as a law).
    #[test]
    fn reductions_version_independent(vals in prop::collection::vec(-100.0f64..100.0, 27)) {
        static RED: Site = Site::new("prop_red", mas::stdpar::LoopClass::ScalarReduction, 3);
        static ARED: Site = Site::new("prop_ared", mas::stdpar::LoopClass::ArrayReduction, 2);
        let space = IndexSpace3 { i0: 0, i1: 3, j0: 0, j1: 3, k0: 0, k1: 3 };
        let run = |v: CodeVersion| -> (f64, Vec<f64>) {
            let mut spec = DeviceSpec::a100_40gb();
            spec.jitter_sigma = 0.0;
            let mut par = Par::builder(spec).version(v).build();
            par.ctx.set_phase(mas::gpusim::Phase::Compute);
            let b = par.ctx.mem.register(8 * 27, "x");
            if par.policy.data_mode == mas::gpusim::DataMode::Manual {
                par.ctx.enter_data(b);
            }
            let vals = vals.clone();
            let s = par.reduce_scalar(
                &RED, space, Traffic::new(1, 0, 1), &[b],
                mas::minimpi::ReduceOp::Sum, 0.0,
                |i, j, k| vals[i + 3 * j + 9 * k],
            );
            let mut out = vec![0.0; 3];
            let vals2 = vals.clone();
            par.reduce_array(
                &ARED, space, Traffic::new(1, 1, 1), &[b], &[b], &mut out,
                |i, j, k| (i, vals2[i + 3 * j + 9 * k]),
            );
            (s, out)
        };
        let reference = run(CodeVersion::A);
        for v in CodeVersion::ALL {
            let got = run(v);
            prop_assert_eq!(got.0, reference.0, "{:?} scalar", v);
            prop_assert_eq!(&got.1, &reference.1, "{:?} array", v);
        }
    }
}

// ------------------------------------------------------------ deck parsing

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decks round-trip through their text form for arbitrary field values.
    #[test]
    fn deck_roundtrip(
        nr in 4usize..128, nt in 4usize..128, np in 4usize..256,
        rmax in 1.5f64..50.0, gamma in 1.01f64..1.9,
        visc in 0.0f64..0.1, eta in 0.0f64..0.1, kappa in 0.0f64..0.1,
        steps in 1usize..1000, cfl in 0.05f64..1.0,
        radiation: bool, heating: bool, gravity: bool,
    ) {
        let mut d = Deck {
            grid: mas::config::GridCfg { nr, nt, np, rmax },
            ..Deck::default()
        };
        d.physics.gamma = gamma;
        d.physics.visc = visc;
        d.physics.eta = eta;
        d.physics.kappa0 = kappa;
        d.physics.radiation = radiation;
        d.physics.heating = heating;
        d.physics.gravity = gravity;
        d.time.n_steps = steps;
        d.time.cfl = cfl;
        let text = d.to_deck_string();
        let parsed = Deck::parse(&text).unwrap();
        prop_assert_eq!(parsed, d);
    }
}

// --------------------------------------------------------------- operators

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Constrained transport preserves ∇·B for random fields and EMFs.
    #[test]
    fn ct_preserves_divb_for_random_fields(seed in 0u64..1000, dt in 0.01f64..1.0) {
        use mas::mhd::ops::deriv::CtGeom;
        let r = Mesh1d::uniform(6, 1.0, 2.0, NGHOST, false);
        let t = Mesh1d::uniform(6, 0.8, std::f64::consts::PI - 0.8, NGHOST, false);
        let p = Mesh1d::uniform(6, 0.0, std::f64::consts::TAU, NGHOST, true);
        let g = SphericalGrid::new(r, t, p);
        let ct = CtGeom::new(&g);
        // Deterministic pseudo-random fill from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rand = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut mk = |s: Stagger| {
            let mut f = mas::field::Field::zeros("f", s, &g);
            for v in f.data.as_mut_slice() {
                *v = rand();
            }
            f
        };
        let mut br = mk(Stagger::FaceR);
        let mut bt = mk(Stagger::FaceT);
        let mut bp = mk(Stagger::FaceP);
        let er = mk(Stagger::EdgeR);
        let et = mk(Stagger::EdgeT);
        let ep = mk(Stagger::EdgeP);

        let cells = IndexSpace3::interior_trimmed(Stagger::CellCenter, g.nr, g.nt, g.np, (1, 1, 1));
        let mut before = vec![];
        cells.for_each(|i, j, k| before.push(ct.divb(&br.data, &bt.data, &bp.data, i, j, k)));

        br.interior().for_each(|i, j, k| {
            let a = ct.area_r(i, j, k);
            br.data.add(i, j, k, -dt * ct.circ_r(&et.data, &ep.data, i, j, k) / a);
        });
        bt.interior().for_each(|i, j, k| {
            let a = ct.area_t(i, j, k);
            if a > 0.0 {
                bt.data.add(i, j, k, -dt * ct.circ_t(&er.data, &ep.data, i, j, k) / a);
            }
        });
        bp.interior().for_each(|i, j, k| {
            let a = ct.area_p(i, j);
            bp.data.add(i, j, k, -dt * ct.circ_p(&er.data, &et.data, i, j, k) / a);
        });

        let mut n = 0;
        cells.for_each(|i, j, k| {
            let d = ct.divb(&br.data, &bt.data, &bp.data, i, j, k);
            assert!((d - before[n]).abs() < 1e-8, "divB changed at ({i},{j},{k})");
            n += 1;
        });
    }
}
