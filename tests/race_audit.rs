//! Integration: the dynamic race auditor — the runtime check of the
//! `do concurrent` iteration-independence contract that the paper's DC
//! ports rely on (§IV; every DC body must be iteration-independent or
//! the port is a silent miscompile on some compiler).
//!
//! Three claims are exercised here:
//!
//! 1. **The auditor catches the real historical hazard.** `temp_advect`'s
//!    upwind φ sweep reads the written temperature at `k ± 1` and is the
//!    one kernel PR 1's *manual* audit had to declare `Site::serial()`.
//!    Re-declaring the same physics body as `Tiling::Outer` (the mutant)
//!    must produce a structured violation report naming the site and the
//!    conflicting (buffer, k) pairs.
//! 2. **Every shipped kernel is clean in every code version.** A full
//!    quickstart run under `par_audit` across all six versions reports
//!    zero violations — the mechanized version of PR 1's hand audit.
//! 3. **Audit mode observes without perturbing.** Audit-on and audit-off
//!    runs produce bit-identical state and identical censuses.

use mas::field::{Field, VecField};
use mas::grid::SphericalGrid;
use mas::gpusim::DeviceSpec;
use mas::mhd::ops::deriv::DivGeom;
use mas::mhd::physics::advect;
use mas::prelude::*;
use mas::stdpar::{LoopClass, Par, RaceKind, Site};

/// The deliberately mis-tiled mutant: the exact `temp_advect` body, but
/// claiming the `do concurrent` contract (`Tiling::Outer`, the default)
/// instead of the correct `Site::serial()` declaration.
static TEMP_ADVECT_MUTANT: Site =
    Site::new("temp_advect_mutant", LoopClass::Parallel, 3).heavy();

fn advect_setup(audit: bool) -> (SphericalGrid, Par, Field, VecField, DivGeom) {
    let g = SphericalGrid::coronal(12, 10, 8, 8.0);
    let mut spec = DeviceSpec::a100_40gb();
    spec.jitter_sigma = 0.0;
    let mut par = Par::builder(spec)
        .version(CodeVersion::D2xu)
        .threads(2)
        .audit(audit)
        .build();
    par.ctx.set_phase(mas::gpusim::Phase::Compute);
    let mut temp = Field::zeros("temp", Stagger::CellCenter, &g);
    temp.init_with(&g, |r, t, p| 1.0 + 0.2 * (r * t).sin() + 0.1 * p.cos());
    let mut v = VecField::zeros_faces("v", &g);
    v.r.init_with(&g, |r, t, p| 0.05 * (r + t + p).sin());
    v.t.init_with(&g, |r, t, p| 0.04 * (r * t - p).cos());
    v.p.init_with(&g, |r, t, p| 0.03 * (r - t + 2.0 * p).sin());
    for f in std::iter::once(&mut temp).chain(v.comps_mut()) {
        let id = par.ctx.mem.register(f.data.bytes(), f.name);
        f.buf = Some(id);
        par.ctx.enter_data(id);
    }
    let geom = DivGeom::new(&g);
    (g, par, temp, v, geom)
}

/// Claim 1: the mutation test. The auditor must flag the mis-tiled
/// upwind sweep with a read/write violation across distinct k-planes and
/// a report naming the site and suggesting `Site::serial()`.
#[test]
fn auditor_flags_mis_tiled_temp_advect() {
    let (g, mut par, mut temp, v, geom) = advect_setup(true);
    advect::advect_temperature_at(
        &mut par,
        &TEMP_ADVECT_MUTANT,
        &g,
        &geom,
        &mut temp,
        &v,
        0.1,
        5.0 / 3.0,
    );
    let audit = par.race_audit();
    assert!(audit.enabled);
    assert_eq!(audit.launches_audited, 1);
    assert!(!audit.is_clean(), "the k-neighbour recurrence must be flagged");
    assert!(
        audit.violations.iter().all(|vi| vi.site == "temp_advect_mutant"),
        "only the mutant site may appear: {:?}",
        audit.violations
    );
    // The upwind φ gradient reads the written temperature at k-1/k+1:
    // every violation is a cross-tile read with distinct k planes.
    for vi in &audit.violations {
        assert_eq!(vi.kind, RaceKind::ReadWrite, "{vi:?}");
        assert_ne!(vi.k_a, vi.k_b, "conflicting tiles must differ: {vi:?}");
        assert_eq!(
            vi.k_a.abs_diff(vi.k_b),
            1,
            "the recurrence is nearest-neighbour in k: {vi:?}"
        );
    }
    let report = audit.report();
    assert!(report.contains("FAILED"));
    assert!(report.contains("temp_advect_mutant"));
    assert!(report.contains("Site::serial"), "report must suggest the fix:\n{report}");
}

/// The correctly declared production site passes the same physics clean:
/// `Site::serial()` sites are exempt from tiling, hence from the audit.
#[test]
fn correctly_declared_temp_advect_is_clean() {
    let (g, mut par, mut temp, v, geom) = advect_setup(true);
    advect::advect_temperature(&mut par, &g, &geom, &mut temp, &v, 0.1, 5.0 / 3.0);
    let audit = par.race_audit();
    assert!(audit.enabled);
    assert_eq!(
        audit.launches_audited, 0,
        "serial sites bypass tiling and need no audit"
    );
    assert!(audit.is_clean());
}

/// The mutant and the production kernel compute the same physics when
/// both run serially (audit mode serializes the mutant's tiles), which
/// is what makes the mutation test a pure *declaration* mutation.
#[test]
fn mutant_body_matches_production_body_under_audit() {
    let (g, mut par_a, mut temp_a, v_a, geom_a) = advect_setup(true);
    advect::advect_temperature(&mut par_a, &g, &geom_a, &mut temp_a, &v_a, 0.1, 5.0 / 3.0);
    let (g2, mut par_b, mut temp_b, v_b, geom_b) = advect_setup(true);
    advect::advect_temperature_at(
        &mut par_b,
        &TEMP_ADVECT_MUTANT,
        &g2,
        &geom_b,
        &mut temp_b,
        &v_b,
        0.1,
        5.0 / 3.0,
    );
    assert_eq!(
        temp_a.data.as_slice(), temp_b.data.as_slice(),
        "audited (serialized) mutant must reproduce the serial site bitwise"
    );
}

/// The row-sliced path is auditable at the same element granularity as
/// the scalar path: a `loop3_rows` kernel whose `(j, k)` iteration
/// writes its own row window but *reads* the same buffer's row in the
/// next k-plane violates the iteration-independence contract across k
/// tiles, and the auditor must flag it just as it flags the scalar
/// `temp_advect` mutant.
#[test]
fn auditor_flags_overlapping_row_windows() {
    use mas::field::Array3;
    use mas::gpusim::Traffic;
    use mas::grid::IndexSpace3;

    static ROW_OVERLAP_MUTANT: Site =
        Site::new("row_overlap_mutant", LoopClass::Parallel, 3).heavy();

    let mut spec = DeviceSpec::a100_40gb();
    spec.jitter_sigma = 0.0;
    let mut par = Par::builder(spec)
        .version(CodeVersion::D2xu)
        .threads(2)
        .audit(true)
        .build();
    par.ctx.set_phase(mas::gpusim::Phase::Compute);
    let mut a = Array3::zeros(8, 6, 8);
    let b = par.ctx.mem.register(a.bytes(), "rowbuf");
    par.ctx.enter_data(b);
    let sp = IndexSpace3 { i0: 1, i1: 7, j0: 1, j1: 5, k0: 1, k1: 7 };
    let v = a.par_view_as::<true>();
    par.loop3_rows(&ROW_OVERLAP_MUTANT, sp, Traffic::new(1, 1, 1), &[b], &[b], |j, k| {
        // Deliberate contract violation: read the row another k-plane
        // owns (k+1, or k-1 at the top edge) while writing our own.
        let k_src = if k + 1 < sp.k1 { k + 1 } else { k - 1 };
        let src: Vec<f64> = v.row(sp.i0, sp.i1, j, k_src).to_vec();
        let out = v.row_mut(sp.i0, sp.i1, j, k);
        for n in 0..out.len() {
            out[n] += 0.5 * src[n] + 1.0;
        }
    });
    let audit = par.race_audit();
    assert!(audit.enabled);
    assert_eq!(audit.launches_audited, 1);
    assert!(
        !audit.is_clean(),
        "the cross-plane row read must be flagged:\n{}",
        audit.report()
    );
    assert!(
        audit.violations.iter().all(|vi| vi.site == "row_overlap_mutant"),
        "only the mutant site may appear: {:?}",
        audit.violations
    );
    for vi in &audit.violations {
        assert_eq!(vi.kind, RaceKind::ReadWrite, "{vi:?}");
        assert_eq!(
            vi.k_a.abs_diff(vi.k_b),
            1,
            "the overlap is nearest-neighbour in k: {vi:?}"
        );
    }
    assert!(audit.report().contains("row_overlap_mutant"));
}

/// Claim 2: the clean pass. Every shipped kernel in a full solver run —
/// advection, momentum, induction, conduction (STS), viscosity (PCG),
/// boundary conditions, polar fixes, halo pack/unpack — satisfies the
/// iteration-independence contract under all six code versions.
#[test]
fn all_shipped_sites_audit_clean_in_all_six_versions() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 3;
    deck.output.hist_interval = 3;
    deck.par_audit = true;
    for &v in CodeVersion::ALL.iter() {
        let r = mas::mhd::run_single_rank(&deck, v);
        let a = &r.race_audit;
        assert!(a.enabled, "{v:?}: deck key must arm the auditor");
        assert!(
            a.is_clean(),
            "{v:?}: shipped kernels must be race-free:\n{}",
            a.report()
        );
        assert!(
            a.sites_audited >= 20,
            "{v:?}: expected most solver sites audited, got {}",
            a.sites_audited
        );
        assert!(a.launches_audited >= a.sites_audited as u64);
        assert!(
            a.launches_skipped > 0,
            "{v:?}: steady-state relaunches should be audit-once-skipped"
        );
        assert!(a.report().contains("CLEAN"));
    }
}

/// Claim 3: audit mode is observation-only — state hash, diagnostics,
/// kernel census and host-tile census are identical with it on or off.
#[test]
fn audit_mode_does_not_perturb_the_run() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 3;
    deck.output.hist_interval = 3;
    let run = |audit: bool, version| {
        let mut d = deck.clone();
        d.par_audit = audit;
        mas::mhd::run_single_rank(&d, version)
    };
    for &v in &[CodeVersion::A, CodeVersion::Ad2xu, CodeVersion::D2xad] {
        let off = run(false, v);
        let on = run(true, v);
        assert!(!off.race_audit.enabled);
        assert_eq!(off.race_audit.launches_audited, 0);
        assert!(on.race_audit.enabled);
        assert!(on.race_audit.launches_audited > 0);
        assert_eq!(off.state_hash, on.state_hash, "{v:?}: bit-identical state");
        assert_eq!(off.kernel_launches, on.kernel_launches, "{v:?}");
        assert_eq!(off.host_tiles, on.host_tiles, "{v:?}: census unchanged");
        let d_off = off.hist.last().unwrap().diag;
        let d_on = on.hist.last().unwrap().diag;
        assert_eq!(d_off.mass.to_bits(), d_on.mass.to_bits(), "{v:?}");
        assert_eq!(d_off.etherm.to_bits(), d_on.etherm.to_bits(), "{v:?}");
    }
}

/// The auditor also rides along on multi-rank runs (each rank audits its
/// own executor) without changing the physics.
#[test]
fn audit_mode_works_across_ranks() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 2;
    deck.output.hist_interval = 2;
    deck.par_audit = true;
    let rep = mas::mhd::run_multi_rank(
        &deck,
        CodeVersion::Ad,
        DeviceSpec::a100_40gb(),
        2,
        1,
        false,
    );
    for r in &rep.ranks {
        assert!(r.race_audit.enabled, "rank {}", r.rank);
        assert!(r.race_audit.is_clean(), "rank {}:\n{}", r.rank, r.race_audit.report());
        assert!(r.race_audit.launches_audited > 0, "rank {}", r.rank);
    }
}
