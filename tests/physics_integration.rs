//! Integration: physical invariants of the full solver over multi-step
//! runs (constrained transport, mass bookkeeping, stability, energy
//! injection by boundary driving).

use mas::prelude::*;

#[test]
fn divb_stays_at_roundoff_over_a_long_run() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 20;
    deck.output.hist_interval = 5;
    let report = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    for h in &report.hist {
        assert!(
            h.diag.divb_max < 1e-11,
            "divB {} at step {}",
            h.diag.divb_max,
            h.step
        );
    }
}

#[test]
fn state_remains_finite_and_positive() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 20;
    deck.output.hist_interval = 5;
    let report = mas::mhd::run_single_rank(&deck, CodeVersion::D2xu);
    for h in &report.hist {
        assert!(h.diag.temp_min > 0.0, "temperature must stay positive");
        assert!(h.diag.mass.is_finite() && h.diag.mass > 0.0);
        assert!(h.diag.ekin.is_finite() && h.diag.ekin >= 0.0);
    }
}

#[test]
fn quiet_atmosphere_stays_quiet() {
    // With gravity off and no drivers, the uniform hydrostatic state has
    // no force imbalance: flows must stay at round-off.
    let mut deck = Deck::preset_quickstart();
    deck.physics.gravity = false;
    deck.physics.heating = false;
    deck.physics.radiation = false;
    deck.physics.b0 = 0.0;
    deck.physics.rho0 = 1.0;
    deck.time.n_steps = 10;
    deck.output.hist_interval = 10;
    // Flat density (no gravity => no stratification needed).
    let report = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    let d = report.hist.last().unwrap().diag;
    assert!(
        d.speed_max < 1e-10,
        "spurious flows in a uniform equilibrium: {}",
        d.speed_max
    );
}

#[test]
fn boundary_shear_injects_energy() {
    let mut deck = Deck::preset_quickstart();
    deck.physics.perturb = 0.1;
    deck.time.n_steps = 15;
    deck.output.hist_interval = 15;
    let driven = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    deck.physics.perturb = 0.0;
    let quiet = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    let dd = driven.hist.last().unwrap().diag;
    let dq = quiet.hist.last().unwrap().diag;
    assert!(dd.ekin > 5.0 * dq.ekin, "driver must dominate: {} vs {}", dd.ekin, dq.ekin);
    assert!(dd.emag > dq.emag, "shear must inject magnetic energy");
}

#[test]
fn pcg_and_sts_work_is_recorded() {
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 3;
    deck.output.hist_interval = 1;
    let report = mas::mhd::run_single_rank(&deck, CodeVersion::A);
    for h in &report.hist {
        assert!(h.pcg_iters > 0, "viscosity PCG must iterate");
        assert!(h.sts_ops >= 3, "RKL2 needs at least 3 stages");
    }
}

#[test]
fn heating_creates_latitude_structure() {
    // The streamer-weighted heating must warm the equator relative to the
    // poles over time.
    let mut deck = Deck::preset_quickstart();
    deck.time.n_steps = 25;
    deck.output.hist_interval = 0;
    let (t_eq, t_pole) = mas::minimpi::World::run(1, |comm| {
        let mut sim = mas::mhd::Simulation::builder(&deck)
            .version(CodeVersion::A)
            .build();
        sim.run(&comm);
        let g = mas::grid::NGHOST;
        let nt = sim.grid.nt;
        let i = g + 2;
        let k = g + 3;
        (
            sim.state.temp.data.get(i, g + nt / 2, k),
            sim.state.temp.data.get(i, g + 1, k),
        )
    })
    .pop()
    .unwrap();
    assert!(
        t_eq > t_pole,
        "equator ({t_eq}) must heat faster than the pole ({t_pole})"
    );
}
