//! Allocation-count regression guard for the lean hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase (lazy pools spawn, halo/scratch buffers reach their
//! high-water marks) further `step::advance` calls must perform **zero**
//! heap allocations. This pins the "allocation-free hot path" claim of
//! the persisted benchmark baseline (`BENCH_6.json`) as a hard invariant
//! rather than a number that only shows up as a wall-clock delta.
//!
//! The test lives in its own integration-test binary so no concurrently
//! running sibling test can allocate against the shared counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use mas::config::GridCfg;
use mas::prelude::*;

/// System allocator with a global allocation counter. Only allocation
/// *events* are counted (alloc / alloc_zeroed / realloc) — frees are
/// irrelevant to the invariant.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP_STEPS: usize = 3;
const MEASURED_STEPS: usize = 5;

#[test]
fn lean_hot_path_is_allocation_free_after_warmup() {
    let mut deck = Deck::preset_quickstart();
    deck.grid = GridCfg { nr: 12, nt: 10, np: 12, rmax: 8.0 };
    deck.time.n_steps = WARMUP_STEPS + MEASURED_STEPS;
    deck.output.hist_interval = 0; // diagnostics off: pure stepping
    deck.host_threads = 1; // deterministic: no pool workers racing the counter

    let delta = mas::minimpi::World::run(1, |comm| {
        let mut sim = Simulation::builder(&deck).version(CodeVersion::A).build();
        for _ in 0..WARMUP_STEPS {
            mas::mhd::step::advance(&mut sim, &comm);
        }
        let before = ALLOC_EVENTS.load(Ordering::SeqCst);
        for _ in 0..MEASURED_STEPS {
            mas::mhd::step::advance(&mut sim, &comm);
        }
        ALLOC_EVENTS.load(Ordering::SeqCst) - before
    })
    .pop()
    .expect("one rank");

    assert_eq!(
        delta, 0,
        "lean hot path allocated {delta} times over {MEASURED_STEPS} steps after warmup"
    );
}
