//! Flux-rope shearing: drive azimuthal shear at the inner boundary of the
//! dipolar corona (the CME-initiation driver class MAS/CORHEL runs in
//! production) and watch magnetic energy build up above the potential
//! state while the kinetic energy tracks the driven flows.
//!
//! Run: `cargo run --release --example flux_rope_eruption`

use mas::prelude::*;

fn main() {
    let mut deck = Deck::preset_flux_rope();
    deck.grid = mas::config::GridCfg {
        nr: 32,
        nt: 28,
        np: 40,
        rmax: 15.0,
    };
    deck.time.n_steps = 80;
    deck.output.hist_interval = 10;

    println!(
        "shearing the dipole with a boundary flow of amplitude {} ...",
        deck.physics.perturb
    );
    let driven = mas::mhd::run_single_rank(&deck, CodeVersion::A);

    let mut quiet_deck = deck.clone();
    quiet_deck.physics.perturb = 0.0;
    let quiet = mas::mhd::run_single_rank(&quiet_deck, CodeVersion::A);

    println!(
        "\n{:>6} {:>9} {:>14} {:>14} {:>14} {:>12}",
        "step", "time", "E_kin(driven)", "E_kin(quiet)", "ΔE_mag", "max|divB|"
    );
    for (hd, hq) in driven.hist.iter().zip(quiet.hist.iter()) {
        println!(
            "{:>6} {:>9.4} {:>14.5e} {:>14.5e} {:>+14.5e} {:>12.3e}",
            hd.step,
            hd.time,
            hd.diag.ekin,
            hq.diag.ekin,
            hd.diag.emag - hq.diag.emag,
            hd.diag.divb_max
        );
    }

    let d_last = driven.hist.last().unwrap().diag;
    let q_last = quiet.hist.last().unwrap().diag;
    println!("\nsummary:");
    println!(
        "  driven run kinetic energy is {:.1}x the quiet run's — the shear \
         flows are in",
        d_last.ekin / q_last.ekin.max(1e-300)
    );
    println!(
        "  free magnetic energy injected: {:+.4e} ({:+.4}% of the potential \
         field energy)",
        d_last.emag - q_last.emag,
        100.0 * (d_last.emag - q_last.emag) / q_last.emag
    );
    assert!(
        d_last.ekin > 3.0 * q_last.ekin,
        "the driver must dominate the quiet wind start-up"
    );
    assert!(
        d_last.emag > q_last.emag,
        "shearing a line-tied field must inject free magnetic energy"
    );
    println!("  ∇·B still at round-off: {:.2e} ✓", d_last.divb_max);
}
