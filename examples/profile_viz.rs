//! Profile visualization: run two ranks under manual and unified memory,
//! record profiler spans, and print Fig.-4-style timelines of the
//! viscosity solver — a compact interactive version of the
//! `fig4_timeline` benchmark binary.
//!
//! Run: `cargo run --release --example profile_viz`

use mas::gpusim::DeviceSpec;
use mas::io::render_timeline;
use mas::prelude::*;

fn main() {
    let mut deck = Deck::preset_quickstart();
    deck.grid.np = 24;
    deck.time.n_steps = 2;
    deck.output.hist_interval = 0;
    // Charge the cost model at the paper's 36M-cell production scale so
    // the version ratios are representative (see DESIGN.md §2).
    deck.paper_cells = 36_000_000;

    println!("profiling 2 ranks: Code 1 (A, manual memory) vs Code 3 (ADU, unified)...\n");
    let manual = mas::mhd::run_multi_rank(&deck, CodeVersion::A, DeviceSpec::a100_40gb(), 2, 1, true);
    let um = mas::mhd::run_multi_rank(&deck, CodeVersion::Adu, DeviceSpec::a100_40gb(), 2, 1, true);

    for (label, rep) in [("manual (A)", &manual), ("unified (ADU)", &um)] {
        let spans = &rep.ranks[0].spans;
        // Window around the middle of the recorded (timed) span range —
        // the virtual clock also ran during the untimed setup phase, so
        // the window must be relative to the first recorded span.
        let t0 = spans.first().map(|s| s.t0).unwrap_or(0.0);
        let t_end = spans.last().map(|s| s.t1).unwrap_or(1.0);
        let (w0, w1) = (t0 + 0.35 * (t_end - t0), t0 + 0.45 * (t_end - t0));
        println!("{}", render_timeline(spans, w0, w1, 96, label));
    }

    println!("phase totals (rank 0):");
    for (label, rep) in [("manual (A)", &manual), ("unified (ADU)", &um)] {
        let r = &rep.ranks[0];
        println!(
            "  {:<14} wall {:>8.2} ms | compute {:>8.2} ms | MPI {:>7.2} ms ({:>4.1}%)",
            label,
            r.wall_us / 1e3,
            r.compute_us / 1e3,
            r.mpi_us / 1e3,
            100.0 * r.mpi_fraction()
        );
    }
    println!(
        "\nUM/manual wall ratio: {:.2}x — the unified-memory tax the paper \
         measures (1.25x–3x depending on GPU count).",
        um.wall_us() / manual.wall_us()
    );

    // Perfetto/chrome://tracing export for interactive inspection.
    std::fs::create_dir_all("out").ok();
    mas::io::export_chrome_trace(&manual.ranks[0].spans, 0, "out/profile_manual.trace.json")
        .unwrap();
    mas::io::export_chrome_trace(&um.ranks[0].spans, 0, "out/profile_um.trace.json").unwrap();
    println!("wrote out/profile_manual.trace.json and out/profile_um.trace.json");
}
