//! Quickstart: run a tiny coronal simulation on one virtual GPU with the
//! original OpenACC-style execution policy (paper "Code 1 (A)") and print
//! the run report.
//!
//! Run: `cargo run --release --example quickstart`

use mas::prelude::*;

fn main() {
    // A small full-physics problem (16×12×16 cells, 5 steps).
    let deck = Deck::preset_quickstart();
    println!(
        "problem '{}': {}x{}x{} cells, {} steps, γ = {}",
        deck.problem, deck.grid.nr, deck.grid.nt, deck.grid.np, deck.time.n_steps,
        deck.physics.gamma
    );

    let report = mas::mhd::run_single_rank(&deck, CodeVersion::A);

    println!("\nrun complete:");
    println!("  steps taken          : {}", report.steps);
    println!("  physical time        : {:.4} (normalized)", report.time);
    println!("  kernel launches      : {}", report.kernel_launches);
    println!("  model wall time      : {:.2} ms (virtual A100)", report.wall_us / 1e3);
    println!(
        "  MPI share            : {:.1}% (pack/exchange/collectives)",
        100.0 * report.mpi_fraction()
    );

    let last = report.hist.last().expect("history");
    println!("\nfinal diagnostics:");
    println!("  total mass           : {:.6e}", last.diag.mass);
    println!("  kinetic energy       : {:.6e}", last.diag.ekin);
    println!("  magnetic energy      : {:.6e}", last.diag.emag);
    println!("  thermal energy       : {:.6e}", last.diag.etherm);
    println!("  max |div B|          : {:.3e}  (constrained transport)", last.diag.divb_max);
    println!("  min temperature      : {:.4}", last.diag.temp_min);

    assert!(last.diag.divb_max < 1e-10, "CT must preserve div B");
    println!("\nok — ∇·B preserved to round-off, state finite.");
}
