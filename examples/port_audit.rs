//! Port audit: run the same physics under all six code versions of the
//! paper, verify the solutions agree, and print the directive audit and
//! the per-version performance model — the whole paper in one example.
//!
//! Run: `cargo run --release --example port_audit`

use mas::prelude::*;
use mas::stdpar::DirectiveAudit;

fn main() {
    let mut deck = Deck::preset_quickstart();
    deck.grid.np = 24;
    deck.time.n_steps = 8;
    deck.output.hist_interval = 8;
    // Charge the cost model at the paper's 36M-cell production scale so
    // the version ratios are representative (see DESIGN.md §2).
    deck.paper_cells = 36_000_000;

    println!("running {} steps under all six code versions...\n", deck.time.n_steps);
    let mut reports = Vec::new();
    for v in CodeVersion::ALL {
        reports.push(mas::mhd::run_single_rank(&deck, v));
    }

    // --- physics validation: all versions agree (paper §V-A) ---
    let reference = reports[0].hist.last().unwrap().diag;
    println!("cross-version validation (relative to Code 1/A):");
    for r in &reports {
        let d = r.hist.last().unwrap().diag;
        let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-300)).abs();
        let worst = rel(d.mass, reference.mass)
            .max(rel(d.etherm, reference.etherm))
            .max(rel(d.emag, reference.emag));
        println!(
            "  {:<16} max relative diff {:.2e}  {}",
            r.version.label(),
            worst,
            if worst < 1e-12 { "✓ identical" } else { "within solver tolerance" }
        );
        assert!(worst < 1e-9, "versions must agree");
    }

    // --- performance model ---
    println!("\nmodel wall time (virtual A100, 1 GPU):");
    let base = reports[0].wall_us;
    for r in &reports {
        println!(
            "  {:<16} {:>9.2} ms   {:>5.2}x vs A   (MPI {:>4.1}%)",
            r.version.label(),
            r.wall_us / 1e3,
            r.wall_us / base,
            100.0 * r.mpi_fraction()
        );
    }

    // --- directive audit ---
    let audit = DirectiveAudit::new(&reports[0].registry);
    println!("\ndirective census ($acc lines) per version:");
    for (v, lines) in audit.full_census().per_version {
        println!(
            "  {:<16} total {:>4}  (parallel/loop {:>3}, data {:>3}, atomic {}, \
             routine {}, kernels {}, wait {}, set_dev {}, cont {:>2})",
            v.label(),
            lines.total(),
            lines.parallel_loop,
            lines.data,
            lines.atomic,
            lines.routine,
            lines.kernels,
            lines.wait,
            lines.set_device,
            lines.continuation,
        );
    }
    println!(
        "\nCode 5 (D2XU) reaches zero OpenACC directives — the paper's \
         headline — at the price of unified-memory performance."
    );
}
