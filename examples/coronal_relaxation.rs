//! Coronal relaxation: the scaled version of the paper's test problem —
//! a dipolar corona with thermodynamic physics (conduction, radiation,
//! coronal heating, gravity) relaxing toward a quasi-steady state.
//!
//! Prints the diagnostic history (energies, ∇·B, solver work per step)
//! and writes a CSV for plotting.
//!
//! Run: `cargo run --release --example coronal_relaxation`

use mas::prelude::*;

fn main() {
    let mut deck = Deck::preset_coronal_background();
    deck.grid = mas::config::GridCfg {
        nr: 40,
        nt: 32,
        np: 48,
        rmax: 20.0,
    };
    deck.time.n_steps = 60;
    deck.output.hist_interval = 10;

    println!(
        "relaxing a {}x{}x{} dipolar corona for {} steps...",
        deck.grid.nr, deck.grid.nt, deck.grid.np, deck.time.n_steps
    );
    // Run through the Simulation API so we can pull radial profiles at the
    // end (the report-level API covers the common cases).
    use mas::mhd::diag::{radial_profile, ProfileField};
    let (report, t_prof, v_prof, radii) = mas::minimpi::World::run(1, |comm| {
        let mut sim = mas::mhd::Simulation::builder(&deck)
            .version(CodeVersion::A)
            .build();
        sim.run(&comm);
        let t = radial_profile(&mut sim.par, &comm, &sim.grid, &sim.state, ProfileField::Temperature);
        let v = radial_profile(&mut sim.par, &comm, &sim.grid, &sim.state, ProfileField::RadialVelocity);
        let radii: Vec<f64> = (0..sim.grid.nr)
            .map(|i| sim.grid.rc[mas::grid::NGHOST + i])
            .collect();
        let hist = sim.hist.clone();
        (hist, t, v, radii)
    })
    .pop()
    .unwrap();
    // Shim: downstream code below reads `report.hist`.
    struct R { hist: Vec<mas::mhd::diag::HistRecord> }
    let report = R { hist: report };

    println!(
        "\n{:>6} {:>9} {:>10} {:>12} {:>12} {:>12} {:>11} {:>6} {:>5}",
        "step", "time", "dt", "E_kin", "E_mag", "E_therm", "max|divB|", "PCG", "STS"
    );
    for h in &report.hist {
        println!(
            "{:>6} {:>9.4} {:>10.3e} {:>12.5e} {:>12.5e} {:>12.5e} {:>11.3e} {:>6} {:>5}",
            h.step, h.time, h.dt, h.diag.ekin, h.diag.emag, h.diag.etherm,
            h.diag.divb_max, h.pcg_iters, h.sts_ops
        );
    }

    // Write the history for external plotting.
    std::fs::create_dir_all("out").ok();
    let mut csv = mas::io::CsvWriter::create(
        "out/relaxation_history.csv",
        &["step", "time", "dt", "ekin", "emag", "etherm", "divb_max", "pcg_iters", "sts_ops"],
    )
    .expect("csv");
    for h in &report.hist {
        csv.row(&[
            h.step.to_string(),
            format!("{}", h.time),
            format!("{}", h.dt),
            format!("{}", h.diag.ekin),
            format!("{}", h.diag.emag),
            format!("{}", h.diag.etherm),
            format!("{}", h.diag.divb_max),
            h.pcg_iters.to_string(),
            h.sts_ops.to_string(),
        ])
        .unwrap();
    }
    csv.flush().unwrap();

    let first = report.hist.first().unwrap();
    let last = report.hist.last().unwrap();
    println!("\nsummary over the run:");
    println!(
        "  mass drift     : {:+.3e} (relative)",
        (last.diag.mass - first.diag.mass) / first.diag.mass
    );
    println!("  max |div B|    : {:.3e} (round-off: constrained transport)", last.diag.divb_max);
    println!(
        "  flows developing: E_kin {:.2e} -> {:.2e} (wind starting up)",
        first.diag.ekin, last.diag.ekin
    );
    println!("\nwrote out/relaxation_history.csv");

    println!("\nshell-averaged radial structure (wind starting up):");
    println!("{:>8} {:>10} {:>12}", "r [Rs]", "<T>", "<v_r>");
    for i in (0..radii.len()).step_by((radii.len() / 8).max(1)) {
        println!("{:>8.2} {:>10.5} {:>12.3e}", radii[i], t_prof[i], v_prof[i]);
    }
}
